"""Tests for the trace-driven row-buffer analysis."""

import numpy as np
import pytest

from repro.dram.presets import preset
from repro.dram.random_mapping import naive_mapping
from repro.memctrl.trace import (
    matrix_column_trace,
    random_trace,
    run_trace,
    sequential_trace,
    strided_trace,
)

HASHED = preset("No.1").mapping
NAIVE = naive_mapping(preset("No.1").geometry)


class TestTraces:
    def test_sequential(self):
        trace = sequential_trace(0x1000, 10)
        assert trace.size == 10
        assert trace[1] - trace[0] == 64

    def test_strided(self):
        trace = strided_trace(0, 5, 1 << 20)
        assert int(trace[4]) == 4 << 20

    def test_random_within_memory(self):
        trace = random_trace(2**33, 1000, np.random.default_rng(0))
        assert (trace < 2**33).all()
        assert (trace % 64 == 0).all()

    def test_matrix_column(self):
        trace = matrix_column_trace(0, rows=4, row_stride_bytes=4096, columns=2)
        assert trace.size == 8
        assert int(trace[4]) == 64  # second column starts one line over

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_trace(0, 0)
        with pytest.raises(ValueError):
            strided_trace(0, 5, 0)
        with pytest.raises(ValueError):
            random_trace(2**30, -1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            matrix_column_trace(0, 0, 4096, 1)


class TestRunTrace:
    def test_sequential_is_row_friendly(self):
        """Streaming reads hit the row buffer almost every access."""
        stats = run_trace(HASHED, sequential_trace(0x4000000, 500))
        assert stats.hit_rate > 0.9
        assert stats.conflicts < 20

    def test_counts_sum(self):
        stats = run_trace(HASHED, sequential_trace(0x4000000, 100))
        assert stats.hits + stats.closed + stats.conflicts == stats.accesses == 100

    def test_naive_mapping_serialises_strided_walk(self):
        trace = matrix_column_trace(
            0x4000000, rows=128, row_stride_bytes=8192 * 16, columns=4
        )
        stats = run_trace(NAIVE, trace)
        assert stats.banks_used == 1
        assert stats.bank_imbalance == 1.0
        assert stats.speedup_from_banking == pytest.approx(1.0)

    def test_hashed_mapping_spreads_strided_walk(self):
        trace = matrix_column_trace(
            0x4000000, rows=128, row_stride_bytes=8192 * 16, columns=4
        )
        stats = run_trace(HASHED, trace)
        assert stats.banks_used == 16
        assert stats.bank_imbalance < 0.15
        assert stats.speedup_from_banking > 10

    def test_random_trace_balanced(self):
        stats = run_trace(
            HASHED, random_trace(HASHED.geometry.total_bytes, 4000, np.random.default_rng(1))
        )
        assert stats.banks_used == 16
        assert stats.bank_imbalance < 0.12

    def test_total_time_consistent_with_classes(self):
        stats = run_trace(HASHED, sequential_trace(0x4000000, 64))
        assert stats.total_ns > 0
        assert stats.parallel_ns <= stats.total_ns
        assert stats.total_ns == pytest.approx(sum(stats.bank_busy_ns.values()))
