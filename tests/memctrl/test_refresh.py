"""Unit tests for the refresh model."""

import pytest

from repro.dram.spec import DdrGeneration, default_timings
from repro.memctrl.refresh import RefreshModel


@pytest.fixture
def model():
    return RefreshModel(timings=default_timings(DdrGeneration.DDR3))


class TestRefreshModel:
    def test_duty_cycle_small(self, model):
        assert 0.0 < model.duty_cycle < 0.1

    def test_contamination_grows_with_window(self, model):
        assert model.contamination_probability(100.0) < model.contamination_probability(
            5000.0
        )

    def test_contamination_capped_at_one(self, model):
        assert model.contamination_probability(1e9) == 1.0

    def test_contamination_negative_window_rejected(self, model):
        with pytest.raises(ValueError):
            model.contamination_probability(-1.0)

    def test_activations_in_retention_window(self, model):
        """At ~100 ns per activation, a 64 ms window allows several hundred
        thousand activations — the regime rowhammer needs."""
        count = model.activations_possible(100.0)
        assert 300_000 < count < 700_000

    def test_activations_invalid_access_time(self, model):
        with pytest.raises(ValueError):
            model.activations_possible(0.0)

    def test_retention_window_validation(self):
        with pytest.raises(ValueError):
            RefreshModel(
                timings=default_timings(DdrGeneration.DDR3), retention_window_ms=0.0
            )
