"""Unit and property tests for the memory-controller state machine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.presets import PRESETS, preset
from repro.memctrl.controller import MemoryController
from repro.memctrl.timing import AccessClass


def controller_for(name="No.1"):
    return MemoryController(mapping=preset(name).mapping)


class TestStateMachine:
    def test_first_access_is_row_closed(self):
        controller = controller_for()
        assert controller.access(0).access_class is AccessClass.ROW_CLOSED

    def test_second_access_same_row_hits(self):
        controller = controller_for()
        controller.access(0)
        # Offset 32 stays within column bits 0-5 (bit 6 is the channel).
        assert controller.access(32).access_class is AccessClass.ROW_HIT

    def test_conflict_on_row_change(self):
        controller = controller_for()
        mapping = controller.mapping
        base = 0
        other = mapping.encode(
            mapping.dram_address(base)._replace(row=1)
        )
        controller.access(base)
        assert controller.access(other).access_class is AccessClass.ROW_CONFLICT

    def test_different_banks_do_not_conflict(self):
        controller = controller_for()
        mapping = controller.mapping
        base = 0
        other = mapping.encode(mapping.dram_address(base)._replace(bank=1))
        controller.access(base)
        assert controller.access(other).access_class is AccessClass.ROW_CLOSED

    def test_precharge_all(self):
        controller = controller_for()
        controller.access(0)
        controller.precharge_all()
        assert controller.access(0).access_class is AccessClass.ROW_CLOSED

    def test_activation_counting(self):
        controller = controller_for()
        mapping = controller.mapping
        a = 0
        b = mapping.encode(mapping.dram_address(a)._replace(row=1))
        for _ in range(5):
            controller.access(a)
            controller.access(b)
        record = controller.access(a)
        key = (record.bank, mapping.row_of(a))
        assert controller.activation_counts[key] == 6
        controller.reset_activations()
        assert not controller.activation_counts


class TestClosedForm:
    @given(st.data())
    @settings(max_examples=60)
    def test_classify_pair_matches_state_machine(self, data):
        """The closed form must equal the steady state of an alternating
        loop on the real state machine (accesses 3 and 4 of the loop)."""
        name = data.draw(st.sampled_from(sorted(PRESETS)))
        mapping = PRESETS[name].mapping
        top = mapping.geometry.total_bytes
        addr_a = data.draw(st.integers(min_value=0, max_value=top - 1))
        addr_b = data.draw(st.integers(min_value=0, max_value=top - 1))
        controller = MemoryController(mapping=mapping)
        predicted = controller.classify_pair(addr_a, addr_b)

        stepper = MemoryController(mapping=mapping)
        stepper.access(addr_a)
        stepper.access(addr_b)
        steady_a = stepper.access(addr_a).access_class
        steady_b = stepper.access(addr_b).access_class
        if predicted is AccessClass.ROW_CONFLICT:
            assert steady_a is AccessClass.ROW_CONFLICT
            assert steady_b is AccessClass.ROW_CONFLICT
        else:
            # Same row or different banks: steady state is all hits.
            assert steady_a is AccessClass.ROW_HIT
            assert steady_b is AccessClass.ROW_HIT

    def test_classify_pairs_matches_scalar(self):
        mapping = preset("No.6").mapping
        controller = MemoryController(mapping=mapping)
        rng = np.random.default_rng(9)
        others = rng.integers(0, mapping.geometry.total_bytes, 512, dtype=np.uint64)
        base = int(others[0])
        flags = controller.classify_pairs(base, others)
        for i in range(0, 512, 37):
            expected = controller.classify_pair(base, int(others[i]))
            assert flags[i] == (expected is AccessClass.ROW_CONFLICT)

    def test_sbdr_rate_matches_bank_count(self):
        """Random pairs conflict with probability ~1/#banks."""
        mapping = preset("No.1").mapping
        controller = MemoryController(mapping=mapping)
        rng = np.random.default_rng(10)
        others = rng.integers(0, mapping.geometry.total_bytes, 20_000, dtype=np.uint64)
        flags = controller.classify_pairs(int(others[0]), others)
        rate = flags.mean()
        assert 0.75 / 16 < rate < 1.25 / 16
