"""Unit tests for repro.memctrl.timing."""

import numpy as np
import pytest

from repro.dram.spec import DdrGeneration
from repro.memctrl.timing import AccessClass, LatencyModel, NoiseParams


class TestNoiseParams:
    def test_noiseless(self):
        noise = NoiseParams.noiseless()
        assert noise.jitter_sigma_ns == 0.0
        assert noise.outlier_probability == 0.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            NoiseParams(outlier_probability=1.5)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            NoiseParams(jitter_sigma_ns=-1.0)


class TestIdealLatency:
    @pytest.fixture
    def model(self):
        return LatencyModel.for_generation(DdrGeneration.DDR3, NoiseParams.noiseless())

    def test_ordering(self, model):
        hit = model.ideal_ns(AccessClass.ROW_HIT)
        closed = model.ideal_ns(AccessClass.ROW_CLOSED)
        conflict = model.ideal_ns(AccessClass.ROW_CONFLICT)
        assert hit < closed < conflict

    def test_different_bank_equals_hit(self, model):
        assert model.ideal_ns(AccessClass.DIFFERENT_BANK) == model.ideal_ns(
            AccessClass.ROW_HIT
        )

    def test_conflict_gap_positive(self, model):
        assert model.conflict_gap_ns > 20.0

    def test_base_overhead_included(self, model):
        assert model.ideal_ns(AccessClass.ROW_HIT) > model.base_overhead_ns


class TestSampling:
    def test_noiseless_sample_equals_ideal(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR4, NoiseParams.noiseless())
        rng = np.random.default_rng(0)
        assert model.sample_ns(AccessClass.ROW_HIT, rng) == model.ideal_ns(
            AccessClass.ROW_HIT
        )

    def test_noisy_samples_vary(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng = np.random.default_rng(0)
        samples = {model.sample_ns(AccessClass.ROW_HIT, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_samples_positive(self):
        model = LatencyModel.for_generation(
            DdrGeneration.DDR3,
            NoiseParams(jitter_sigma_ns=500.0),  # absurd jitter
        )
        rng = np.random.default_rng(1)
        for _ in range(100):
            assert model.sample_ns(AccessClass.ROW_HIT, rng) >= 1.0


class TestBatchSampling:
    def test_noiseless_batch_exact(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3, NoiseParams.noiseless())
        flags = np.array([True, False, True])
        latencies = model.sample_batch_ns(flags, np.random.default_rng(0))
        slow = model.ideal_ns(AccessClass.ROW_CONFLICT)
        fast = model.ideal_ns(AccessClass.DIFFERENT_BANK)
        np.testing.assert_allclose(latencies, [slow, fast, slow])

    def test_noisy_batch_separates_populations(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng = np.random.default_rng(2)
        flags = np.array([True] * 500 + [False] * 500)
        latencies = model.sample_batch_ns(flags, rng)
        assert latencies[:500].mean() > latencies[500:].mean() + 20.0

    def test_outliers_appear_at_configured_rate(self):
        noise = NoiseParams(jitter_sigma_ns=0.0, outlier_probability=0.5, outlier_extra_ns=100.0)
        model = LatencyModel.for_generation(DdrGeneration.DDR3, noise)
        rng = np.random.default_rng(3)
        flags = np.zeros(4000, dtype=bool)
        latencies = model.sample_batch_ns(flags, rng)
        fast = model.ideal_ns(AccessClass.DIFFERENT_BANK)
        outlier_fraction = (latencies > fast + 1e-9).mean()
        assert 0.4 < outlier_fraction < 0.6

    def test_batch_matches_scalar_distribution(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng = np.random.default_rng(4)
        batch = model.sample_batch_ns(np.ones(2000, dtype=bool), rng)
        ideal = model.ideal_ns(AccessClass.ROW_CONFLICT)
        assert abs(np.median(batch) - ideal) < 2.0


class TestPairSampling:
    """``sample_pair_ns`` must be bit-identical, per call, to a
    single-element ``sample_batch_ns`` — the contract that let it replace
    the size-1 batch inside ``measure_latency`` without changing any
    downstream artefact."""

    def test_noiseless_equals_ideal(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR4, NoiseParams.noiseless())
        rng = np.random.default_rng(0)
        assert model.sample_pair_ns(True, rng) == model.ideal_ns(AccessClass.ROW_CONFLICT)
        assert model.sample_pair_ns(False, rng) == model.ideal_ns(
            AccessClass.DIFFERENT_BANK
        )

    def test_bit_identical_to_single_element_batch(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)  # default noise
        flags = [True, False, True, True, False] * 40
        rng_scalar = np.random.default_rng(9)
        rng_batch = np.random.default_rng(9)
        for flag in flags:
            scalar = model.sample_pair_ns(flag, rng_scalar)
            batch = model.sample_batch_ns(np.array([flag]), rng_batch)[0]
            assert scalar == batch

    def test_bit_identical_with_outliers_only(self):
        noise = NoiseParams(
            jitter_sigma_ns=0.0, outlier_probability=0.3, outlier_extra_ns=80.0
        )
        model = LatencyModel.for_generation(DdrGeneration.DDR3, noise)
        rng_scalar = np.random.default_rng(10)
        rng_batch = np.random.default_rng(10)
        for _ in range(200):
            scalar = model.sample_pair_ns(False, rng_scalar)
            batch = model.sample_batch_ns(np.zeros(1, dtype=bool), rng_batch)[0]
            assert scalar == batch

    def test_generator_state_advances_identically(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng_scalar = np.random.default_rng(11)
        rng_batch = np.random.default_rng(11)
        for _ in range(17):
            model.sample_pair_ns(True, rng_scalar)
            model.sample_batch_ns(np.ones(1, dtype=bool), rng_batch)
        # identical stream position: the next draw from both must agree
        assert rng_scalar.random() == rng_batch.random()

    def test_multi_element_batch_reorders_stream(self):
        """Documented sharp edge: one big batch is NOT a scalar loop —
        normals and uniforms are drawn in blocks. Anyone tempted to batch
        a per-pair loop wholesale must preserve the per-pair draw order
        (see SimulatedMachine.measure_latency_pairs)."""
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        flags = np.ones(8, dtype=bool)
        batch = model.sample_batch_ns(flags, np.random.default_rng(12))
        rng = np.random.default_rng(12)
        scalar = np.array([model.sample_pair_ns(True, rng) for _ in range(8)])
        assert scalar[0] == batch[0]
        assert not np.array_equal(scalar, batch)
