"""Unit tests for repro.memctrl.timing."""

import numpy as np
import pytest

from repro.dram.spec import DdrGeneration
from repro.memctrl.timing import AccessClass, LatencyModel, NoiseParams


class TestNoiseParams:
    def test_noiseless(self):
        noise = NoiseParams.noiseless()
        assert noise.jitter_sigma_ns == 0.0
        assert noise.outlier_probability == 0.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            NoiseParams(outlier_probability=1.5)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            NoiseParams(jitter_sigma_ns=-1.0)


class TestIdealLatency:
    @pytest.fixture
    def model(self):
        return LatencyModel.for_generation(DdrGeneration.DDR3, NoiseParams.noiseless())

    def test_ordering(self, model):
        hit = model.ideal_ns(AccessClass.ROW_HIT)
        closed = model.ideal_ns(AccessClass.ROW_CLOSED)
        conflict = model.ideal_ns(AccessClass.ROW_CONFLICT)
        assert hit < closed < conflict

    def test_different_bank_equals_hit(self, model):
        assert model.ideal_ns(AccessClass.DIFFERENT_BANK) == model.ideal_ns(
            AccessClass.ROW_HIT
        )

    def test_conflict_gap_positive(self, model):
        assert model.conflict_gap_ns > 20.0

    def test_base_overhead_included(self, model):
        assert model.ideal_ns(AccessClass.ROW_HIT) > model.base_overhead_ns


class TestSampling:
    def test_noiseless_sample_equals_ideal(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR4, NoiseParams.noiseless())
        rng = np.random.default_rng(0)
        assert model.sample_ns(AccessClass.ROW_HIT, rng) == model.ideal_ns(
            AccessClass.ROW_HIT
        )

    def test_noisy_samples_vary(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng = np.random.default_rng(0)
        samples = {model.sample_ns(AccessClass.ROW_HIT, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_samples_positive(self):
        model = LatencyModel.for_generation(
            DdrGeneration.DDR3,
            NoiseParams(jitter_sigma_ns=500.0),  # absurd jitter
        )
        rng = np.random.default_rng(1)
        for _ in range(100):
            assert model.sample_ns(AccessClass.ROW_HIT, rng) >= 1.0


class TestBatchSampling:
    def test_noiseless_batch_exact(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3, NoiseParams.noiseless())
        flags = np.array([True, False, True])
        latencies = model.sample_batch_ns(flags, np.random.default_rng(0))
        slow = model.ideal_ns(AccessClass.ROW_CONFLICT)
        fast = model.ideal_ns(AccessClass.DIFFERENT_BANK)
        np.testing.assert_allclose(latencies, [slow, fast, slow])

    def test_noisy_batch_separates_populations(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng = np.random.default_rng(2)
        flags = np.array([True] * 500 + [False] * 500)
        latencies = model.sample_batch_ns(flags, rng)
        assert latencies[:500].mean() > latencies[500:].mean() + 20.0

    def test_outliers_appear_at_configured_rate(self):
        noise = NoiseParams(jitter_sigma_ns=0.0, outlier_probability=0.5, outlier_extra_ns=100.0)
        model = LatencyModel.for_generation(DdrGeneration.DDR3, noise)
        rng = np.random.default_rng(3)
        flags = np.zeros(4000, dtype=bool)
        latencies = model.sample_batch_ns(flags, rng)
        fast = model.ideal_ns(AccessClass.DIFFERENT_BANK)
        outlier_fraction = (latencies > fast + 1e-9).mean()
        assert 0.4 < outlier_fraction < 0.6

    def test_batch_matches_scalar_distribution(self):
        model = LatencyModel.for_generation(DdrGeneration.DDR3)
        rng = np.random.default_rng(4)
        batch = model.sample_batch_ns(np.ones(2000, dtype=bool), rng)
        ideal = model.ideal_ns(AccessClass.ROW_CONFLICT)
        assert abs(np.median(batch) - ideal) < 2.0
