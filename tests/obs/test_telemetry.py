"""Live telemetry bus: atomic appends, activation, stream determinism.

The determinism contracts pinned here mirror the trace ones in
``test_grid_trace.py``: the canonical view of a telemetry stream —
volatile bookkeeping stripped, events sorted — is identical whether the
cells ran serially or across worker processes, and a journal-resumed
run's cell events fold (cached → ok) to the same set a from-scratch run
emits.
"""

import json
import os

import pytest

from repro.evalsuite.table1 import run_table1
from repro.ioutil import atomic_append
from repro.obs import telemetry
from repro.parallel import GridCell, run_cells_supervised


def _parity_cells(count):
    return [
        GridCell("repro.analysis.bits:parity", {"value": value})
        for value in range(count)
    ]


class TestAtomicAppend:
    def test_appends_whole_lines(self, tmp_path):
        target = tmp_path / "stream.jsonl"
        atomic_append(target, json.dumps({"kind": "a"}))
        atomic_append(target, json.dumps({"kind": "b"}))
        lines = target.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["a", "b"]

    def test_rejects_embedded_newlines(self, tmp_path):
        with pytest.raises(ValueError):
            atomic_append(tmp_path / "stream.jsonl", "two\nlines")


class TestBusActivation:
    def test_emit_without_bus_is_a_noop(self):
        assert telemetry.current_bus() is None
        telemetry.emit("cell", cell="x")  # must neither raise nor write

    def test_activation_nests_and_restores(self, tmp_path):
        outer = telemetry.TelemetryBus(tmp_path / "outer.jsonl")
        inner = telemetry.TelemetryBus(tmp_path / "inner.jsonl")
        with telemetry.activate_bus(outer):
            with telemetry.activate_bus(inner):
                assert telemetry.current_bus() is inner
                telemetry.emit("grid", cells=1)
            assert telemetry.current_bus() is outer
        assert telemetry.current_bus() is None
        assert [e["kind"] for e in telemetry.load_events(inner.path)] == ["grid"]
        assert telemetry.load_events(outer.path) == []

    def test_events_carry_bookkeeping_fields(self, tmp_path):
        bus = telemetry.TelemetryBus(tmp_path / "stream.jsonl", source="main")
        with telemetry.activate_bus(bus):
            telemetry.emit("cell", cell="No.1", status="ok")
        (event,) = telemetry.load_events(bus.path)
        assert event["kind"] == "cell"
        assert event["seq"] == 1
        assert event["pid"] == os.getpid()
        assert event["source"] == "main"
        assert event["wall"] > 0


class TestLoadEvents:
    def test_missing_file_is_empty(self, tmp_path):
        assert telemetry.load_events(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        target = tmp_path / "stream.jsonl"
        atomic_append(target, json.dumps({"kind": "ok"}))
        with open(target, "a", encoding="utf-8") as stream:
            stream.write('{"kind": "torn"')  # writer died mid-append
        assert [e["kind"] for e in telemetry.load_events(target)] == ["ok"]


class TestEta:
    def test_no_estimate_before_first_completion(self):
        assert telemetry.estimate_eta_s(10.0, 0, 5) is None

    def test_rate_extrapolation(self):
        assert telemetry.estimate_eta_s(10.0, 2, 6) == pytest.approx(20.0)

    def test_done_means_zero(self):
        assert telemetry.estimate_eta_s(10.0, 6, 6) == 0.0


class TestCanonicalEvents:
    def test_strips_volatile_fields_and_sorts(self):
        one = [
            {"kind": "cell", "cell": "b", "status": "ok", "total": 2,
             "seq": 1, "wall": 5.0, "pid": 1, "source": "main",
             "done": 1, "eta_s": 3.0},
            {"kind": "cell", "cell": "a", "status": "ok", "total": 2,
             "seq": 2, "wall": 9.0, "pid": 1, "source": "worker",
             "done": 2, "eta_s": 0.0},
        ]
        two = [
            {**event, "pid": 77, "seq": 9, "wall": 1.0, "done": 0}
            for event in reversed(one)
        ]
        assert telemetry.canonical_events(one) == telemetry.canonical_events(two)
        assert all(
            "wall" not in event and "done" not in event
            for event in telemetry.canonical_events(one)
        )

    def test_fold_cached_rewrites_status(self):
        events = [{"kind": "cell", "cell": "a", "status": "cached"}]
        (folded,) = telemetry.canonical_events(events, fold_cached=True)
        assert folded["status"] == "ok"
        (unfolded,) = telemetry.canonical_events(events)
        assert unfolded["status"] == "cached"


class TestRenderEvent:
    def test_known_kinds_render_their_fields(self):
        cell = {"kind": "cell", "wall": 0, "source": "main", "cell": "No.1",
                "status": "ok", "done": 1, "total": 4, "failed": 0,
                "cached": 0, "eta_s": 7.5}
        assert "cell No.1 ok (1/4" in telemetry.render_event(cell)
        assert "eta=7.5s" in telemetry.render_event(cell)
        wave = {"kind": "wave", "wall": 0, "source": "main", "wave": 2,
                "waves": 3, "confirmed": 4, "fallback": 1, "cold": 0,
                "failed_machines": 0, "store_entries": 2}
        assert "wave 2/3 folded" in telemetry.render_event(wave)
        generic = {"kind": "run-start", "wall": 0, "source": "main",
                   "command": "table1", "seed": 1}
        assert "run-start" in telemetry.render_event(generic)
        assert "command=table1" in telemetry.render_event(generic)


def _supervised_stream(tmp_path, name, cells, journal=None, jobs=None):
    path = tmp_path / name
    with telemetry.activate_bus(telemetry.TelemetryBus(path)):
        outcome = run_cells_supervised(cells, jobs=jobs, journal=journal)
    return path, outcome


def _cell_events(path):
    return [e for e in telemetry.load_events(path) if e["kind"] == "cell"]


class TestSupervisedStream:
    def test_progress_events_cover_every_cell(self, tmp_path):
        path, outcome = _supervised_stream(
            tmp_path, "serial.jsonl", _parity_cells(4)
        )
        assert outcome.complete
        events = telemetry.load_events(path)
        assert [e["kind"] for e in events][0] == "grid-start"
        cells = _cell_events(path)
        assert len(cells) == 4
        assert all(e["status"] == "ok" for e in cells)
        assert cells[-1]["done"] == 4
        assert cells[-1]["eta_s"] == 0.0

    def test_serial_and_pooled_streams_are_equivalent(self, tmp_path):
        serial_path, serial = _supervised_stream(
            tmp_path, "serial.jsonl", _parity_cells(6)
        )
        pooled_path, pooled = _supervised_stream(
            tmp_path, "pooled.jsonl", _parity_cells(6), jobs=2
        )
        assert serial.results == pooled.results
        assert telemetry.canonical_events(
            telemetry.load_events(serial_path)
        ) == telemetry.canonical_events(telemetry.load_events(pooled_path))

    def test_resumed_stream_folds_to_the_fresh_one(self, tmp_path):
        journal = str(tmp_path / "grid.journal")
        fresh_path, fresh = _supervised_stream(
            tmp_path, "fresh.jsonl", _parity_cells(4), journal=journal
        )
        resumed_path, resumed = _supervised_stream(
            tmp_path, "resumed.jsonl", _parity_cells(4), journal=journal
        )
        assert fresh.results == resumed.results
        resumed_cells = _cell_events(resumed_path)
        assert all(e["status"] == "cached" for e in resumed_cells)
        # Modulo the cached→ok fold and volatile fields, the resumed
        # run's cell events are the fresh run's cell events.
        assert telemetry.canonical_events(
            _cell_events(fresh_path), fold_cached=True
        ) == telemetry.canonical_events(resumed_cells, fold_cached=True)


class TestGridTelemetry:
    def test_worker_phase_events_reach_the_stream(self, tmp_path):
        path = tmp_path / "table1.jsonl"
        with telemetry.activate_bus(telemetry.TelemetryBus(path)):
            run_table1(seed=1, machines=("No.1",), determinism_runs=2, jobs=2)
        events = telemetry.load_events(path)
        kinds = {e["kind"] for e in events}
        assert "grid" in kinds
        phases = [e for e in events if e["kind"] == "phase"]
        assert phases
        assert all(e["source"] == "worker" for e in phases)
        assert all(e["pid"] != os.getpid() for e in phases)

    def test_streams_equivalent_across_jobs(self, tmp_path):
        def stream(jobs, name):
            path = tmp_path / name
            with telemetry.activate_bus(telemetry.TelemetryBus(path)):
                run_table1(
                    seed=1, machines=("No.1",), determinism_runs=2, jobs=jobs
                )
            return telemetry.load_events(path)

        serial = stream(None, "serial.jsonl")
        pooled = stream(2, "pooled.jsonl")
        assert telemetry.canonical_events(serial) == telemetry.canonical_events(
            pooled
        )

    def test_telemetry_does_not_change_results(self, tmp_path):
        from repro.evalsuite.table1 import render_table1

        plain = render_table1(
            run_table1(seed=1, machines=("No.1",), determinism_runs=2)
        )
        path = tmp_path / "stream.jsonl"
        with telemetry.activate_bus(telemetry.TelemetryBus(path)):
            streamed = render_table1(
                run_table1(seed=1, machines=("No.1",), determinism_runs=2)
            )
        assert streamed == plain
        assert telemetry.load_events(path)
