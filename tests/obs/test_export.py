"""JSONL trace export/load: round-trips, atomicity contract, strictness."""

import json

import pytest

from repro.obs import tracing
from repro.obs.export import (
    TRACE_FORMAT,
    TRACE_VERSION,
    export_trace,
    load_trace,
    render_trace,
)


def _sample_tracer():
    tracer = tracing.Tracer()
    with tracing.activate(tracer):
        with tracer.span("dramdig") as root:
            root.set("measurements", 10)
            with tracer.span("calibrate") as child:
                child.set("measurements", 10)
            tracing.inc("probe.pair_measurements", 10)
            tracing.observe("partition.pile_size", 8.0)
    return tracer


class TestRoundTrip:
    def test_export_then_load_preserves_everything(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        export_trace(path, tracer, meta={"command": "run", "seed": 7})
        trace = load_trace(path)
        assert trace.header["command"] == "run"
        assert trace.header["seed"] == 7
        assert [span.to_json() for span in trace.spans] == [
            span.to_json() for span in tracer.spans
        ]
        assert trace.metrics == tracer.metrics.snapshot()

    def test_render_is_one_json_object_per_line(self):
        text = render_trace(_sample_tracer())
        lines = text.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "header"
        assert records[0]["format"] == TRACE_FORMAT
        assert records[0]["version"] == TRACE_VERSION
        assert [r["type"] for r in records[1:-1]] == ["span"] * (len(records) - 2)
        assert records[-1]["type"] == "metrics"

    def test_spans_load_in_id_order(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        export_trace(path, tracer)
        ids = [span.span_id for span in load_trace(path).spans]
        assert ids == sorted(ids)


class TestStrictLoading:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text(json.dumps({"format": "other-trace", "version": 1}) + "\n")
        with pytest.raises(ValueError, match="not a dramdig-trace"):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION + 1}) + "\n"
        )
        with pytest.raises(ValueError, match="unsupported trace version"):
            load_trace(path)

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION})
            + "\n{not json\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_trace(tmp_path / "absent.jsonl")
