"""Run-history recording, order-independent folding, regression flags."""

import random

from repro.obs import history
from repro.obs.metrics import MetricsRegistry


def _snapshot(measurements, pile):
    registry = MetricsRegistry()
    registry.inc("measurements", measurements)
    registry.observe("pile", pile)
    return registry.snapshot()


class TestRecordAndLoad:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "history.jsonl"
        history.record_run(
            target, "table1", wall_s=1.5, sim_ns=2e9,
            metrics=_snapshot(10, 4.0), extra={"seed": 1},
        )
        history.record_run(target, "table1", wall_s=1.4, sim_ns=2e9)
        entries = history.load_history(target)
        assert len(entries) == 2
        assert entries[0]["command"] == "table1"
        assert entries[0]["seed"] == 1
        assert entries[0]["metrics"]["counters"]["measurements"] == 10
        assert entries[1]["metrics"] == {}

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "nested" / "deeper" / "history.jsonl"
        history.record_run(target, "run", wall_s=0.1)
        assert len(history.load_history(target)) == 1

    def test_missing_torn_and_foreign_lines_are_skipped(self, tmp_path):
        target = tmp_path / "history.jsonl"
        assert history.load_history(target) == []
        history.record_run(target, "table1", wall_s=1.0)
        with open(target, "a", encoding="utf-8") as stream:
            stream.write('{"format": "other", "version": 1}\n')
            stream.write('{"torn')
        assert len(history.load_history(target)) == 1


class TestFold:
    def test_fold_is_order_independent(self):
        entries = [
            {"metrics": _snapshot(3, 1.0)},
            {"metrics": _snapshot(5, 9.0)},
            {"metrics": _snapshot(7, 4.0)},
            {"metrics": {}},
            {},  # an entry recorded without metrics at all
        ]
        reference = history.fold_history_metrics(entries).snapshot()
        rng = random.Random(3)
        for _ in range(6):
            shuffled = entries[:]
            rng.shuffle(shuffled)
            folded = history.fold_history_metrics(shuffled).snapshot()
            assert folded == reference
        assert reference["counters"]["measurements"] == 15
        assert reference["histograms"]["pile"]["count"] == 3


class TestRegressions:
    @staticmethod
    def _entry(command, sim_ns=None, wall_s=1.0):
        return {"command": command, "sim_ns": sim_ns, "wall_s": wall_s}

    def test_sim_growth_beyond_threshold_is_flagged(self):
        entries = [self._entry("table1", sim_ns=1e9) for _ in range(4)]
        entries.append(self._entry("table1", sim_ns=1.2e9))
        (finding,) = history.detect_regressions(entries)
        assert finding.clock == "sim"
        assert finding.command == "table1"
        assert "1.20x" in finding.describe()

    def test_sim_growth_within_threshold_passes(self):
        entries = [self._entry("table1", sim_ns=1e9) for _ in range(4)]
        entries.append(self._entry("table1", sim_ns=1.04e9))
        assert history.detect_regressions(entries) == []

    def test_wall_fallback_uses_the_wide_threshold(self):
        entries = [self._entry("table1", wall_s=1.0) for _ in range(3)]
        entries.append(self._entry("table1", wall_s=1.8))
        assert history.detect_regressions(entries) == []
        entries.append(self._entry("table1", wall_s=4.0))
        findings = history.detect_regressions(entries)
        assert [finding.clock for finding in findings] == ["wall"]

    def test_single_entry_commands_are_skipped(self):
        assert history.detect_regressions([self._entry("x", sim_ns=1e9)]) == []

    def test_window_bounds_the_comparison(self):
        # An ancient slow run outside the window must not mask a
        # regression against the recent fast runs.
        entries = [self._entry("t", sim_ns=9e9)]
        entries += [self._entry("t", sim_ns=1e9) for _ in range(5)]
        entries.append(self._entry("t", sim_ns=1.2e9))
        (finding,) = history.detect_regressions(entries, window=5)
        assert finding.trailing_mean == 1e9


class TestRender:
    def test_history_table_and_findings(self):
        entries = [
            {"command": "table1", "wall": 0, "wall_s": 1.0, "sim_ns": 1e9},
            {"command": "table1", "wall": 0, "wall_s": 1.0, "sim_ns": 2e9},
        ]
        text = history.render_history(entries)
        assert "table1" in text
        assert "regression:" in text

    def test_clean_history_reports_none(self):
        entries = [
            {"command": "table1", "wall": 0, "wall_s": 1.0, "sim_ns": 1e9},
            {"command": "table1", "wall": 0, "wall_s": 1.0, "sim_ns": 1e9},
        ]
        assert "no regressions" in history.render_history(entries)

    def test_empty_history_renders(self):
        assert history.render_history([]) == "(no history)"
