"""Trace determinism across execution modes, and resume/cached semantics.

The pinned contracts:

* the merged trace of a grid run is identical (spans, paths, statuses,
  simulated clocks, attributes, metric totals — everything but wall
  clock) whether the cells ran serially in-process or across worker
  processes;
* a ``--resume`` run over a complete journal re-executes nothing and
  marks every journal-supplied cell as a ``cached`` span;
* the per-phase measurement counters in the trace sum exactly to each
  run's ``DramDigResult.measurements`` (the accounting identity
  ``validate_trace`` re-derives).
"""

import repro.parallel.supervisor as supervisor
from repro.core.dramdig import DramDig
from repro.dram.presets import preset
from repro.evalsuite.table1 import render_table1, run_table1
from repro.machine.machine import SimulatedMachine
from repro.obs import tracing
from repro.obs.export import TraceFile
from repro.obs.summary import validate_trace

PANEL = ("No.1", "No.4")


def _traced_table1(jobs=None, journal=None):
    tracer = tracing.Tracer()
    with tracing.activate(tracer):
        verdicts = run_table1(
            seed=1, machines=PANEL, determinism_runs=2, jobs=jobs, journal=journal
        )
    return tracer, verdicts


def _structure(tracer):
    """Everything determinism pins: order, paths, statuses, sim clocks,
    attributes. Wall-clock durations and span ids are excluded (ids are
    allocation order, which both modes share anyway; wall time is noise)."""
    return [
        (
            span.path,
            span.name,
            span.status,
            span.sim_start_ns,
            span.sim_end_ns,
            tuple(sorted(span.attrs.items())),
        )
        for span in sorted(tracer.spans, key=lambda record: record.span_id)
    ]


class TestTraceDeterminism:
    def test_serial_and_parallel_traces_match(self):
        serial_tracer, serial_verdicts = _traced_table1(jobs=None)
        parallel_tracer, parallel_verdicts = _traced_table1(jobs=2)
        assert _structure(serial_tracer) == _structure(parallel_tracer)
        assert (
            serial_tracer.metrics.snapshot() == parallel_tracer.metrics.snapshot()
        )
        assert render_table1(serial_verdicts) == render_table1(parallel_verdicts)

    def test_traced_results_match_untraced(self):
        untraced = render_table1(
            run_table1(seed=1, machines=PANEL, determinism_runs=2)
        )
        tracer, verdicts = _traced_table1()
        assert render_table1(verdicts) == untraced

    def test_merged_trace_is_internally_consistent(self):
        tracer, _ = _traced_table1(jobs=2)
        trace = TraceFile(
            header={"format": "dramdig-trace", "version": 1},
            spans=tracer.spans,
            metrics=tracer.metrics.snapshot(),
        )
        assert validate_trace(trace) == []
        # one grid span + one span subtree per executed cell
        roots = [span for span in tracer.spans if span.parent_id is None]
        assert [root.name for root in roots] == ["grid:table1"]
        cell_spans = [
            span for span in tracer.spans if span.name.startswith("cell:")
        ]
        assert len(cell_spans) == 6  # 3 tools x 2 machines
        assert all(span.status == "ok" for span in cell_spans)


class TestResumeTracing:
    def test_resumed_cells_are_cached_spans_with_zero_reexecution(
        self, tmp_path, monkeypatch
    ):
        journal = tmp_path / "journal.jsonl"
        cold = render_table1(
            run_table1(seed=1, machines=PANEL, determinism_runs=2, journal=journal)
        )

        executed = []
        real = supervisor.execute_cell

        def counting(cell):
            executed.append(cell.task)
            return real(cell)

        monkeypatch.setattr(supervisor, "execute_cell", counting)
        tracer, verdicts = _traced_table1(journal=journal)
        assert executed == []
        assert render_table1(verdicts) == cold

        cell_spans = [
            span for span in tracer.spans if span.name.startswith("cell:")
        ]
        assert len(cell_spans) == 6
        assert all(span.status == "cached" for span in cell_spans)
        # cached cells contribute no children and no measurements
        cached_ids = {span.span_id for span in cell_spans}
        assert not any(
            span.parent_id in cached_ids for span in tracer.spans
        )
        assert tracer.metrics.counters["grid.cells_resumed"] == 6
        assert "probe.pair_measurements" not in tracer.metrics.counters

    def test_journal_fingerprints_shared_between_traced_and_untraced(
        self, tmp_path, monkeypatch
    ):
        """Tracing must not invalidate a journal written untraced (the
        reserved payload keys are excluded from fingerprints)."""
        journal = tmp_path / "journal.jsonl"
        tracer, _ = _traced_table1(journal=journal)
        assert any(s.status == "ok" for s in tracer.spans)

        executed = []
        real = supervisor.execute_cell

        def counting(cell):
            executed.append(cell.task)
            return real(cell)

        monkeypatch.setattr(supervisor, "execute_cell", counting)
        run_table1(seed=1, machines=PANEL, determinism_runs=2, journal=journal)
        assert executed == []


class TestMeasurementAccounting:
    def test_phase_counters_sum_to_result_measurements(self):
        tracer = tracing.Tracer()
        machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
        with tracing.activate(tracer):
            result = DramDig().run(machine)

        root = next(span for span in tracer.spans if span.name == "dramdig")
        assert root.attrs["measurements"] == result.measurements

        phases = [
            span
            for span in tracer.spans
            if span.path.count("/") == 2  # dramdig/attempt-N/<phase>
        ]
        assert {span.name for span in phases} == {
            "allocate", "calibrate", "coarse", "select",
            "partition", "functions", "fine",
        }
        assert (
            sum(span.attrs["measurements"] for span in phases)
            == result.measurements
        )
        # the probe's own counter agrees with the machine's accounting
        assert (
            tracer.metrics.counters["probe.pair_measurements"]
            == result.measurements
        )
