"""Span/tracer semantics: nesting, activation isolation, zero-cost-off."""

import pytest

from repro.obs import tracing


class FakeClock:
    def __init__(self):
        self.elapsed_ns = 0.0

    def advance(self, ns):
        self.elapsed_ns += ns


class TestSpans:
    def test_nesting_records_parent_and_path(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            with tracer.span("outer"):
                with tracer.span("inner") as inner:
                    inner.set("detail", 7)
        outer, inner = tracer.spans
        assert outer.parent_id is None
        assert outer.path == "outer"
        assert inner.parent_id == outer.span_id
        assert inner.path == "outer/inner"
        assert inner.attrs == {"detail": 7}

    def test_sim_clock_bounds(self):
        tracer = tracing.Tracer()
        clock = FakeClock()
        with tracing.activate(tracer):
            with tracer.span("work", clock=clock):
                clock.advance(250.0)
        (span,) = tracer.spans
        assert span.sim_start_ns == 0.0
        assert span.sim_end_ns == 250.0
        assert span.sim_ns == 250.0
        assert span.wall_s >= 0.0

    def test_no_clock_means_no_sim_duration(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            with tracer.span("orchestration"):
                pass
        assert tracer.spans[0].sim_ns is None

    def test_exception_marks_span_error_and_propagates(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            with pytest.raises(RuntimeError):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"
        # The stack unwound: a follow-up span is a fresh root.
        with tracing.activate(tracer):
            with tracer.span("after"):
                pass
        assert tracer.spans[-1].parent_id is None

    def test_ids_are_creation_ordered_and_unique(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        ids = [span.span_id for span in tracer.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestActivation:
    def test_inactive_by_default(self):
        assert tracing.current_tracer() is None
        assert tracing.current_path() == ""

    def test_activate_installs_and_restores(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            assert tracing.current_tracer() is tracer
        assert tracing.current_tracer() is None

    def test_nested_activation_starts_fresh_path(self):
        """An in-process grid cell must produce the same span paths as a
        worker process: activation resets the name stack."""
        outer = tracing.Tracer()
        inner = tracing.Tracer()
        with tracing.activate(outer):
            with outer.span("grid:table1"):
                assert tracing.current_path() == "grid:table1"
                with tracing.activate(inner):
                    assert tracing.current_path() == ""
                    with inner.span("cell:No.1"):
                        assert tracing.current_path() == "cell:No.1"
                assert tracing.current_path() == "grid:table1"
        assert inner.spans[0].path == "cell:No.1"
        assert inner.spans[0].parent_id is None

    def test_null_span_maintains_path_when_off(self):
        """Untraced runs still track the step name for DegradationEvent
        attribution — the only work the off path does."""
        scope = tracing.span("partition")
        assert not isinstance(scope, tracing._SpanScope)
        with scope as span_scope:
            span_scope.set("ignored", 1)  # no-op, must not raise
            assert tracing.current_path() == "partition"
            with tracing.span("retry"):
                assert tracing.current_path() == "partition/retry"
        assert tracing.current_path() == ""


class TestModuleHelpers:
    def test_inc_and_observe_are_noops_when_off(self):
        tracing.inc("some.counter")
        tracing.observe("some.histogram", 3.0)  # must not raise

    def test_inc_and_observe_record_when_on(self):
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            tracing.inc("pipeline.retries", 2)
            tracing.inc("pipeline.retries")
            tracing.observe("pile", 8.0)
        assert tracer.metrics.counters["pipeline.retries"] == 3
        assert tracer.metrics.histograms["pile"].count == 1

    def test_note_event_counts_and_returns_event(self):
        from repro.faults.recovery import DegradationEvent

        event = DegradationEvent(
            step="partition", action="escalated", attempt=1, span="dramdig/x"
        )
        assert tracing.note_event(event) is event  # off: passthrough
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            assert tracing.note_event(event) is event
        assert tracer.metrics.counters["degradation.partition.escalated"] == 1

    def test_degradation_event_describe_names_span(self):
        from repro.faults.recovery import DegradationEvent

        event = DegradationEvent(
            step="calibrate", action="recalibrated", attempt=2,
            span="dramdig/attempt-1/partition",
        )
        assert "@dramdig/attempt-1/partition" in event.describe()
