"""Critical-path extraction and span-level A/B trace diffing."""

from repro.obs.analytics import (
    critical_path,
    diff_traces,
    render_critical_path,
    render_diff,
    span_weight_index,
)
from repro.obs.export import TraceFile
from repro.obs.tracing import SpanRecord


def _span(span_id, parent, name, path, sim=None, status="ok"):
    start, end = (0.0, sim) if sim is not None else (None, None)
    return SpanRecord(
        span_id=span_id, parent_id=parent, name=name, path=path,
        status=status, sim_start_ns=start, sim_end_ns=end,
    )


def _grid_trace(partition_ns=3e9, first_cell_status="ok"):
    """Clockless grid root over two cells; the second is the heavier."""
    return TraceFile(
        spans=[
            _span(1, None, "grid:table1", "grid:table1"),
            _span(2, 1, "cell:No.1", "grid:table1/cell:No.1",
                  status=first_cell_status),
            _span(3, 2, "dramdig", "grid:table1/cell:No.1/dramdig", sim=2e9),
            _span(4, 1, "cell:No.2", "grid:table1/cell:No.2"),
            _span(5, 4, "dramdig", "grid:table1/cell:No.2/dramdig",
                  sim=partition_ns + 1e9),
            _span(6, 5, "partition",
                  "grid:table1/cell:No.2/dramdig/partition", sim=partition_ns),
        ],
    )


class TestSpanWeights:
    def test_clockless_spans_inherit_their_children(self):
        weights = span_weight_index(_grid_trace())
        assert weights[3] == 2e9
        assert weights[2] == 2e9  # cell wrapper: no clock, one child
        assert weights[4] == 4e9
        assert weights[1] == 6e9  # grid root carries the whole run

    def test_measured_spans_keep_their_own_duration(self):
        weights = span_weight_index(_grid_trace())
        # dramdig recorded its own bounds: children do not override it.
        assert weights[5] == 4e9
        assert weights[6] == 3e9


class TestCriticalPath:
    def test_descends_the_heaviest_chain(self):
        steps = critical_path(_grid_trace())
        assert [step.span.name for step in steps] == [
            "grid:table1", "cell:No.2", "dramdig", "partition",
        ]
        assert steps[0].share == 1.0
        assert steps[1].weight_ns == 4e9
        assert steps[3].share == 0.75  # partition is 3/4 of its dramdig

    def test_empty_trace_renders(self):
        assert render_critical_path(TraceFile()) == "(no spans)"

    def test_render_limits_and_labels(self):
        text = render_critical_path(_grid_trace(), limit=2)
        assert "grid:table1" in text
        assert "cell:No.2" in text
        assert "partition" not in text


class TestDiffTraces:
    def test_identical_traces_diff_to_zero(self):
        diff = diff_traces(_grid_trace(), _grid_trace())
        assert diff.delta_ns == 0.0
        assert not diff.regression
        assert diff.base_total_ns == 6e9

    def test_slowdown_is_attributed_to_the_deepest_grown_subtree(self):
        diff = diff_traces(_grid_trace(3e9), _grid_trace(3.5e9))
        assert diff.regression
        assert diff.delta_ns == 0.5e9
        # dramdig and partition both grew by the same 0.5s; attribution
        # picks the deeper path — the phase, not its wrapper.
        assert diff.attribution is not None
        assert diff.attribution.path.endswith("/partition")
        text = render_diff(diff)
        assert "REGRESSION" in text
        assert "attribution:" in text

    def test_growth_within_tolerance_is_not_a_regression(self):
        diff = diff_traces(_grid_trace(3e9), _grid_trace(3.5e9), tolerance=0.2)
        assert not diff.regression

    def test_cached_subtrees_are_excluded_from_both_sides(self):
        base = _grid_trace()
        resumed = _grid_trace(first_cell_status="cached")
        diff = diff_traces(base, resumed)
        # cell:No.1 executed in base but resumed from the journal in the
        # other run; charging 2s against a bodiless cached span would
        # report a phantom 2s speedup. Excluded from both, the traces
        # compare exactly equal — the kill/resume smoke contract.
        assert diff.excluded_paths == ["grid:table1/cell:No.1"]
        assert diff.base_total_ns == diff.other_total_ns == 4e9
        assert not diff.regression
        assert all("cell:No.1" not in row.path for row in diff.rows)

    def test_empty_base_is_never_a_regression(self):
        diff = diff_traces(TraceFile(), _grid_trace())
        assert not diff.regression
