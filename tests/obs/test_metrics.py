"""Metrics registry: counters, histogram stats, commutative merging."""

import math

from repro.obs.metrics import HistogramStats, MetricsRegistry


class TestHistogramStats:
    def test_observe_tracks_summary(self):
        stats = HistogramStats()
        for value in (4.0, 8.0, 6.0):
            stats.observe(value)
        assert stats.count == 3
        assert stats.total == 18.0
        assert stats.min == 4.0
        assert stats.max == 8.0
        assert stats.mean == 6.0

    def test_empty_as_dict_has_null_bounds(self):
        empty = HistogramStats().as_dict()
        assert empty == {"count": 0, "total": 0.0, "min": None, "max": None}
        assert math.isnan(HistogramStats().mean)

    def test_merge_accepts_dict_and_object(self):
        left = HistogramStats()
        left.observe(2.0)
        right = HistogramStats()
        right.observe(10.0)
        left.merge(right)
        left.merge(right.as_dict())
        assert left.count == 3
        assert left.min == 2.0
        assert left.max == 10.0

    def test_merging_empty_is_identity(self):
        stats = HistogramStats()
        stats.observe(5.0)
        stats.merge(HistogramStats())
        stats.merge(HistogramStats().as_dict())
        assert stats.as_dict() == {"count": 1, "total": 5.0, "min": 5.0, "max": 5.0}


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.inc("b", 0)
        assert registry.counters == {"a": 5, "b": 0}

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        registry.observe("pile", 8.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert snapshot["histograms"]["pile"]["count"] == 1
        import json

        json.dumps(snapshot)  # must be serialisable as-is

    def test_merge_snapshot_is_commutative(self):
        def worker(values, counter):
            registry = MetricsRegistry()
            registry.inc("measurements", counter)
            for value in values:
                registry.observe("pile", value)
            return registry.snapshot()

        one = worker([3.0, 9.0], 100)
        two = worker([5.0], 42)

        ab = MetricsRegistry()
        ab.merge_snapshot(one)
        ab.merge_snapshot(two)
        ba = MetricsRegistry()
        ba.merge_snapshot(two)
        ba.merge_snapshot(one)
        assert ab.snapshot() == ba.snapshot()
        assert ab.counters["measurements"] == 142
        assert ab.histograms["pile"].count == 3
        assert ab.histograms["pile"].min == 3.0
        assert ab.histograms["pile"].max == 9.0
