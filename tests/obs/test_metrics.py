"""Metrics registry: counters, histogram stats, commutative merging."""

import math
import random

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    HistogramStats,
    MetricsRegistry,
    bucket_index,
)


class TestHistogramStats:
    def test_observe_tracks_summary(self):
        stats = HistogramStats()
        for value in (4.0, 8.0, 6.0):
            stats.observe(value)
        assert stats.count == 3
        assert stats.total == 18.0
        assert stats.min == 4.0
        assert stats.max == 8.0
        assert stats.mean == 6.0

    def test_empty_as_dict_has_null_bounds(self):
        empty = HistogramStats().as_dict()
        assert empty == {"count": 0, "total": 0.0, "min": None, "max": None}
        assert math.isnan(HistogramStats().mean)

    def test_merge_accepts_dict_and_object(self):
        left = HistogramStats()
        left.observe(2.0)
        right = HistogramStats()
        right.observe(10.0)
        left.merge(right)
        left.merge(right.as_dict())
        assert left.count == 3
        assert left.min == 2.0
        assert left.max == 10.0

    def test_merging_empty_is_identity(self):
        stats = HistogramStats()
        stats.observe(5.0)
        before = stats.as_dict()
        stats.merge(HistogramStats())
        stats.merge(HistogramStats().as_dict())
        assert stats.as_dict() == before
        assert before["count"] == 1
        assert before["total"] == 5.0
        assert before["min"] == 5.0
        assert before["max"] == 5.0
        # A single sample's quantiles are that sample (clamped to max).
        assert before["p50"] == before["p95"] == before["p99"] == 5.0


class TestBuckets:
    def test_bounds_are_sorted_and_cover_the_working_range(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert BUCKET_BOUNDS[0] < 1e-9
        assert BUCKET_BOUNDS[-1] > 1e12

    def test_bucket_index_brackets_each_value(self):
        for value in (1e-12, 0.003, 1.0, 7.5, 123.0, 5e9):
            index = bucket_index(value)
            assert value <= BUCKET_BOUNDS[index]
            if index > 0:
                assert value > BUCKET_BOUNDS[index - 1]
        assert bucket_index(-4.0) == 0
        assert bucket_index(1e300) == len(BUCKET_BOUNDS)

    def test_quantiles_stay_within_one_log_step(self):
        stats = HistogramStats()
        for value in range(1, 101):
            stats.observe(float(value))
        data = stats.as_dict()
        # Estimates are bucket upper bounds: within one 1.25x step above
        # the exact quantile, clamped into [min, max].
        assert 50.0 <= data["p50"] <= 50.0 * 1.25
        assert 95.0 <= data["p95"] <= 95.0 * 1.25
        assert 99.0 <= data["p99"] <= 100.0
        assert stats.quantile(1.0) == 100.0

    def test_shuffle_order_merge_is_invariant(self):
        values = [0.003, 0.4, 1.0, 7.5, 7.5, 123.0, 5000.0, 2.25e9]
        parts = []
        for value in values:
            part = HistogramStats()
            part.observe(value)
            parts.append(part.as_dict())

        def fold(order):
            out = HistogramStats()
            for index in order:
                out.merge(parts[index])
            return out.as_dict()

        reference = fold(range(len(parts)))
        rng = random.Random(11)
        for _ in range(10):
            order = list(range(len(parts)))
            rng.shuffle(order)
            assert fold(order) == reference
        assert reference["count"] == len(values)
        assert reference["p50"] <= reference["p95"] <= reference["p99"]


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.inc("b", 0)
        assert registry.counters == {"a": 5, "b": 0}

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        registry.observe("pile", 8.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert snapshot["histograms"]["pile"]["count"] == 1
        import json

        json.dumps(snapshot)  # must be serialisable as-is

    def test_merge_snapshot_is_commutative(self):
        def worker(values, counter):
            registry = MetricsRegistry()
            registry.inc("measurements", counter)
            for value in values:
                registry.observe("pile", value)
            return registry.snapshot()

        one = worker([3.0, 9.0], 100)
        two = worker([5.0], 42)

        ab = MetricsRegistry()
        ab.merge_snapshot(one)
        ab.merge_snapshot(two)
        ba = MetricsRegistry()
        ba.merge_snapshot(two)
        ba.merge_snapshot(one)
        assert ab.snapshot() == ba.snapshot()
        assert ab.counters["measurements"] == 142
        assert ab.histograms["pile"].count == 3
        assert ab.histograms["pile"].min == 3.0
        assert ab.histograms["pile"].max == 9.0
