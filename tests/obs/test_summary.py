"""Trace summary rendering and the consistency checks CI gates on."""

from repro.obs.export import TraceFile
from repro.obs.tracing import SpanRecord
from repro.obs.summary import render_summary, validate_trace


def _span(span_id, parent, name, path, **kwargs):
    return SpanRecord(
        span_id=span_id, parent_id=parent, name=name, path=path, **kwargs
    )


def _telescoped_trace():
    return TraceFile(
        header={"format": "dramdig-trace", "version": 1, "command": "run"},
        spans=[
            _span(1, None, "dramdig", "dramdig", attrs={"measurements": 30},
                  sim_start_ns=0.0, sim_end_ns=5e9),
            _span(2, 1, "attempt-1", "dramdig/attempt-1",
                  attrs={"measurements": 30}),
            _span(3, 2, "calibrate", "dramdig/attempt-1/calibrate",
                  attrs={"measurements": 12}),
            _span(4, 2, "partition", "dramdig/attempt-1/partition",
                  attrs={"measurements": 18, "piles": 4}),
        ],
        metrics={
            "counters": {"probe.pair_measurements": 30},
            "histograms": {
                "partition.pile_size": {"count": 4, "total": 32.0,
                                        "min": 8.0, "max": 8.0}
            },
        },
    )


class TestValidateTrace:
    def test_consistent_trace_passes(self):
        assert validate_trace(_telescoped_trace()) == []

    def test_duplicate_ids_flagged(self):
        trace = _telescoped_trace()
        trace.spans.append(_span(3, 2, "extra", "dramdig/attempt-1/extra"))
        assert any("duplicate span id 3" in p for p in validate_trace(trace))

    def test_unknown_parent_flagged_in_strict_mode(self):
        trace = _telescoped_trace()
        trace.spans.append(_span(9, 99, "orphan", "orphan"))
        strict = validate_trace(trace, strict=True)
        assert any("unknown parent 99" in p for p in strict)
        # Lenient default: a killed run's stitched trace may reference
        # parents that never made it to disk.
        assert validate_trace(trace) == []

    def test_open_spans_flagged_only_in_strict_mode(self):
        trace = _telescoped_trace()
        trace.spans.append(
            _span(9, 1, "inflight", "dramdig/inflight", status="open")
        )
        assert validate_trace(trace) == []
        assert any("never closed" in p for p in validate_trace(trace, strict=True))

    def test_negative_sim_duration_flagged(self):
        trace = _telescoped_trace()
        trace.spans.append(
            _span(9, 1, "warp", "dramdig/warp", sim_start_ns=10.0, sim_end_ns=5.0)
        )
        assert any("negative simulated duration" in p for p in validate_trace(trace))

    def test_measurement_telescoping_violation_flagged(self):
        trace = _telescoped_trace()
        trace.spans[3].attrs["measurements"] = 17  # 12 + 17 != 30
        problems = validate_trace(trace)
        assert any("claims 30 measurements" in p for p in problems)
        assert any("sum to 29" in p for p in problems)

    def test_children_without_measurements_are_not_telescoped(self):
        trace = TraceFile(
            spans=[
                _span(1, None, "grid:table1", "grid:table1",
                      attrs={"measurements": 5}),
                _span(2, 1, "cell:No.1", "grid:table1/cell:No.1"),
            ]
        )
        assert validate_trace(trace) == []


class TestRenderSummary:
    def test_tree_metrics_and_statuses_render(self):
        trace = _telescoped_trace()
        trace.spans.append(
            _span(5, 1, "cell:No.4", "dramdig/cell:No.4", status="cached")
        )
        text = render_summary(trace)
        assert "trace: dramdig-trace v1 (command=run)" in text
        assert "dramdig" in text
        # children indent beneath the root
        assert "\n  attempt-1" in text
        assert "    calibrate" in text
        assert "measurements=18 piles=4" in text
        assert "CACHED" in text
        assert "probe.pair_measurements" in text
        assert "mean=8.0" in text

    def test_unclosed_and_orphaned_spans_render(self):
        trace = _telescoped_trace()
        trace.spans.append(
            _span(5, 2, "probe", "dramdig/attempt-1/probe", status="open")
        )
        trace.spans.append(_span(9, 99, "stray", "stray"))
        text = render_summary(trace)
        assert "UNCLOSED" in text
        assert "(orphan: parent 99 missing from trace)" in text
        assert "stray" in text

    def test_open_child_suspends_telescoping(self):
        trace = _telescoped_trace()
        trace.spans[2].status = "open"  # calibrate was still in flight
        trace.spans[2].attrs["measurements"] = 3  # partial count
        assert validate_trace(trace) == []
        strict = validate_trace(trace, strict=True)
        assert any("claims 30 measurements" in p for p in strict)

    def test_empty_trace_renders(self):
        text = render_summary(TraceFile(header={"format": "dramdig-trace",
                                                "version": 1}))
        assert "(no spans)" in text
