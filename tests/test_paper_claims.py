"""The paper's headline claims, each as a fast test.

The benchmarks regenerate the full tables; these tests pin the claims at
reduced scale so a plain ``pytest tests/`` already certifies the
reproduction's core statements.
"""

import pytest

from repro.baselines.drama import DramaConfig, DramaTool
from repro.baselines.xiao import XiaoTool
from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.probe import ProbeConfig
from repro.dram.belief import BeliefMapping
from repro.dram.errors import ToolStuckError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig

FAST_DRAMDIG = DramDigConfig(probe=ProbeConfig(rounds=200))
FAST_DRAMA = DramaConfig(pool_size=2500, rounds=400, timeout_seconds=600.0)


class TestClaimGeneric:
    """Claim: DRAMDig uncovers the mapping on every machine setting."""

    @pytest.mark.parametrize("name", ["No.1", "No.2", "No.6", "No.7"])
    def test_representative_panel(self, name):
        machine = SimulatedMachine.from_preset(preset(name), seed=2)
        result = DramDig(FAST_DRAMDIG).run(machine)
        assert result.mapping.equivalent_to(preset(name).mapping)


class TestClaimEfficient:
    """Claim: minutes, not hours — and faster than DRAMA."""

    def test_faster_than_drama_same_machine(self):
        machine_a = SimulatedMachine.from_preset(preset("No.1"), seed=2)
        dramdig_seconds = DramDig(FAST_DRAMDIG).run(machine_a).total_seconds
        machine_b = SimulatedMachine.from_preset(preset("No.1"), seed=2)
        drama_seconds = DramaTool(FAST_DRAMA, seed=2).run(machine_b).seconds
        assert dramdig_seconds < drama_seconds

    def test_worst_case_minutes(self):
        machine = SimulatedMachine.from_preset(preset("No.6"), seed=2)
        result = DramDig().run(machine)
        assert result.total_seconds < 18 * 60


class TestClaimDeterministic:
    """Claim: repeated runs yield the same mapping; DRAMA's do not."""

    def test_dramdig_stable_across_machine_noise(self):
        """Three machine seeds, one mapping. (DRAMA's instability needs
        more runs to manifest reliably; the 8-run determinism bench and
        tests/baselines/test_drama.py pin that side.)"""
        dramdig_outputs = set()
        for run in range(3):
            machine = SimulatedMachine.from_preset(preset("No.1"), seed=10 + run)
            result = DramDig(FAST_DRAMDIG).run(machine)
            dramdig_outputs.add(
                (tuple(sorted(result.mapping.bank_functions)), result.mapping.row_bits)
            )
        assert len(dramdig_outputs) == 1


class TestClaimComparatorsFail:
    """Claim: Xiao et al. is stuck on No.2; DRAMA dies on the noisy No.7."""

    def test_xiao_stuck_no2(self):
        machine = SimulatedMachine.from_preset(preset("No.2"), seed=2)
        with pytest.raises(ToolStuckError):
            XiaoTool().run(machine)

    def test_drama_timeout_no7(self):
        machine = SimulatedMachine.from_preset(preset("No.7"), seed=2)
        assert DramaTool(FAST_DRAMA, seed=2).run(machine).timed_out


class TestClaimRowhammer:
    """Claim: DRAMDig's mapping induces significantly more flips."""

    def test_correct_aim_beats_garbage_aim(self):
        machine_preset = preset("No.2")
        machine = SimulatedMachine.from_preset(machine_preset, seed=2)
        config = HammerConfig(duration_seconds=30.0, test_variability=0.0)
        attack = DoubleSidedAttack(
            machine, config=config, vulnerability=machine_preset.hammer_vulnerability
        )
        correct = attack.run(
            BeliefMapping.from_mapping(machine_preset.mapping), seed=0
        )
        garbage_rows = BeliefMapping(
            address_bits=33,
            bank_functions=machine_preset.mapping.bank_functions,
            row_bits=(10,) + machine_preset.mapping.row_bits,
            column_bits=tuple(
                b for b in machine_preset.mapping.column_bits if b != 10
            ),
        )
        garbage = attack.run(garbage_rows, seed=0)
        assert correct.flips > 10
        assert garbage.flips <= correct.flips // 10
