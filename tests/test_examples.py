"""Every example script must run clean — they are the documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


def test_examples_exist():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "rowhammer_assessment.py",
        "custom_machine.py",
        "compare_tools.py",
        "mapping_explorer.py",
        "timing_channel_demo.py",
        "why_xor_hashing.py",
        "mitigation_study.py",
    } <= scripts


def test_quickstart():
    out = run_example("quickstart.py")
    assert "equivalent to the ground truth" in out


def test_custom_machine():
    out = run_example("custom_machine.py")
    assert "equivalent to ground truth: True" in out


def test_mapping_explorer():
    out = run_example("mapping_explorer.py", "No.8")
    assert "Coffee Lake" in out
    assert "bank0 = XOR of bits (6, 13)" in out


def test_why_xor_hashing():
    out = run_example("why_xor_hashing.py")
    assert "banking speedup 16.0x" in out


def test_mitigation_study():
    out = run_example("mitigation_study.py")
    assert "TRRespass decoy sweep" in out


@pytest.mark.slow
def test_compare_tools():
    out = run_example("compare_tools.py")
    assert "== DRAMA (three independent runs) ==" in out
    assert "failed: stuck" in out


@pytest.mark.slow
def test_rowhammer_assessment():
    out = run_example("rowhammer_assessment.py")
    assert "vulnerable" in out


@pytest.mark.slow
def test_timing_channel_demo():
    out = run_example("timing_channel_demo.py")
    assert "cutoff" in out
