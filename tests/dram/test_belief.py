"""Tests for BeliefMapping (unvalidated tool claims + aggressor aiming)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.belief import BeliefMapping
from repro.dram.presets import PRESETS, preset


def correct_belief(name="No.1") -> BeliefMapping:
    return BeliefMapping.from_mapping(preset(name).mapping)


class TestDecoding:
    def test_matches_address_mapping(self):
        mapping = preset("No.2").mapping
        belief = BeliefMapping.from_mapping(mapping)
        for address in (0, 0x12345678, 0x1FFFFFFC0):
            assert belief.bank_of(address) == mapping.bank_of(address)
            assert belief.row_of(address) == mapping.row_of(address)

    def test_rows_property(self):
        assert correct_belief().rows == 2**16

    def test_incomplete_belief_still_decodes(self):
        """A belief missing bits must not crash — it is just wrong."""
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=(1 << 6,),
            row_bits=tuple(range(20, 33)),
            column_bits=tuple(range(0, 6)),
        )
        assert belief.bank_of(1 << 6) == 1
        assert belief.row_of(1 << 20) == 1


class TestAiming:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    @pytest.mark.parametrize("delta", [-1, 1])
    def test_correct_belief_aims_adjacent(self, name, delta):
        """With the true mapping, the aimed neighbour is exactly one
        physical row away in the same bank."""
        mapping = PRESETS[name].mapping
        belief = BeliefMapping.from_mapping(mapping)
        victim = mapping.encode(
            mapping.dram_address(0)._replace(row=1000, bank=3)
        )
        aggressor = belief.aim_row_neighbor(victim, delta)
        assert aggressor is not None
        assert mapping.bank_of(aggressor) == mapping.bank_of(victim)
        assert mapping.row_of(aggressor) == mapping.row_of(victim) + delta

    def test_row_bounds(self):
        belief = correct_belief()
        mapping = preset("No.1").mapping
        first_row = mapping.encode(mapping.dram_address(0)._replace(row=0))
        assert belief.aim_row_neighbor(first_row, -1) is None
        last_row = mapping.encode(
            mapping.dram_address(0)._replace(row=belief.rows - 1)
        )
        assert belief.aim_row_neighbor(last_row, +1) is None

    def test_wrong_row_lsb_misaims(self):
        """A belief whose lowest row bit is wrong (DRAMA phantom-row case)
        places 'neighbours' that are not physically adjacent."""
        mapping = preset("No.1").mapping
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=mapping.bank_functions,
            row_bits=(10,) + mapping.row_bits,  # phantom bit 10
            column_bits=tuple(b for b in mapping.column_bits if b != 10),
        )
        victim = 5 << 20
        aggressor = belief.aim_row_neighbor(victim, +1)
        assert aggressor is not None
        # Bit 10 is a true column bit: the row did not move at all.
        assert mapping.row_of(aggressor) == mapping.row_of(victim)

    def test_missing_function_misaims_bank(self):
        """A belief without the (14,17) function cannot repair the bank when
        row bit 17 toggles: the aggressor lands in another bank."""
        mapping = preset("No.1").mapping
        functions = tuple(f for f in mapping.bank_functions if f != (1 << 14 | 1 << 17))
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=functions,
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        victim = mapping.encode(mapping.dram_address(0)._replace(row=1000))
        aggressor = belief.aim_row_neighbor(victim, +1)  # flips row bit 17
        assert aggressor is not None
        assert mapping.bank_of(aggressor) != mapping.bank_of(victim)

    @given(st.integers(min_value=0, max_value=2**33 - 1), st.sampled_from([-1, 1]))
    @settings(max_examples=40)
    def test_aim_never_leaves_address_space(self, victim, delta):
        belief = correct_belief("No.1")
        aggressor = belief.aim_row_neighbor(victim, delta)
        if aggressor is not None:
            assert 0 <= aggressor < 2**33


class TestComparison:
    def test_agrees_with_truth(self):
        assert correct_belief("No.5").agrees_with(preset("No.5").mapping)

    def test_hammer_equivalent_ignores_columns(self):
        mapping = preset("No.5").mapping
        belief = BeliefMapping(
            address_bits=34,
            bank_functions=mapping.bank_functions,
            row_bits=mapping.row_bits,
            column_bits=tuple(range(0, 7)),  # wrong columns
        )
        assert belief.hammer_equivalent(mapping)
        assert not belief.agrees_with(mapping)

    def test_basis_change_is_equivalent(self):
        mapping = preset("No.2").mapping
        functions = list(mapping.bank_functions)
        functions[0] ^= functions[1]
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=tuple(functions),
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        assert belief.hammer_equivalent(mapping)
