"""Tests for the compiled GF(2) translation pair (DRAM_MTX / ADDR_MTX)."""

import numpy as np
import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.compiled import CompiledMapping, compile_mapping
from repro.dram.errors import MappingError, SingularMappingError
from repro.dram.mapping import DramAddress
from repro.dram.presets import TABLE2_ORDER, preset
from repro.dram.random_mapping import random_mapping


def _pool(mapping, count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 1 << mapping.geometry.address_bits, count, dtype=np.uint64
    )


class TestScalarIdentity:
    """The compiled kernels must agree with AddressMapping bit for bit."""

    @pytest.mark.parametrize("name", TABLE2_ORDER)
    def test_translate_matches_scalar_on_presets(self, name):
        mapping = preset(name).mapping
        compiled = mapping.compiled
        pool = _pool(mapping, 4096)
        banks, rows, columns = compiled.translate(pool)
        for index in range(pool.size):
            scalar = mapping.dram_address(int(pool[index]))
            assert scalar.bank == int(banks[index])
            assert scalar.row == int(rows[index])
            assert scalar.column == int(columns[index])

    @pytest.mark.parametrize("name", TABLE2_ORDER)
    def test_encode_matches_scalar_on_presets(self, name):
        mapping = preset(name).mapping
        compiled = mapping.compiled
        pool = _pool(mapping, 1024, seed=1)
        banks, rows, columns = compiled.translate(pool)
        phys = compiled.encode(banks, rows, columns)
        assert np.array_equal(phys, pool)  # bijection round-trip
        for index in range(256):
            address = DramAddress(
                int(banks[index]), int(rows[index]), int(columns[index])
            )
            assert mapping.encode(address) == int(phys[index])

    def test_fifty_random_mappings(self):
        rng = np.random.default_rng(1234)
        for _ in range(50):
            mapping = random_mapping(rng)
            compiled = mapping.compiled
            pool = rng.integers(
                0, 1 << mapping.geometry.address_bits, 512, dtype=np.uint64
            )
            banks, rows, columns = compiled.translate(pool)
            assert np.array_equal(compiled.encode(banks, rows, columns), pool)
            for index in range(0, 512, 16):
                scalar = mapping.dram_address(int(pool[index]))
                assert (scalar.bank, scalar.row, scalar.column) == (
                    int(banks[index]),
                    int(rows[index]),
                    int(columns[index]),
                )

    def test_scalar_forms_match_batch(self):
        mapping = preset("No.2").mapping
        compiled = mapping.compiled
        pool = _pool(mapping, 64, seed=2)
        banks, rows, columns = compiled.translate(pool)
        for index in range(pool.size):
            one = compiled.translate_one(int(pool[index]))
            assert (one.bank, one.row, one.column) == (
                int(banks[index]),
                int(rows[index]),
                int(columns[index]),
            )
            assert compiled.encode_one(one) == int(pool[index])


class TestLayout:
    def test_components_partition_the_matrix(self):
        mapping = preset("No.1").mapping
        compiled = mapping.compiled
        spans = compiled.components
        assert spans["column"] == (0, compiled.column_width)
        assert spans["row"] == (compiled.column_width, compiled.row_width)
        assert spans["bank"] == (
            compiled.column_width + compiled.row_width,
            compiled.bank_width,
        )
        assert sum(width for _, width in spans.values()) == len(compiled.dram_mtx)

    def test_counts_and_shifts(self):
        mapping = preset("No.1").mapping
        compiled = mapping.compiled
        assert compiled.banks == mapping.geometry.total_banks
        assert compiled.rows == 1 << len(mapping.row_bits)
        assert compiled.columns == 1 << len(mapping.column_bits)
        assert compiled.column_shift == 0
        assert compiled.row_shift == compiled.column_width
        assert compiled.bank_shift == compiled.column_width + compiled.row_width

    def test_compile_mapping_alias_and_cache(self):
        mapping = preset("No.3").mapping
        assert compile_mapping(mapping) == mapping.compiled
        # cached_property: same object on the second access
        assert mapping.compiled is mapping.compiled

    def test_oversized_row_rejected(self):
        with pytest.raises(MappingError, match="exceeds"):
            CompiledMapping._assemble(
                address_bits=4,
                bank_functions=(1 << 5,),
                row_bits=(0, 1),
                column_bits=(2,),
                invert=False,
            )


class TestBeliefCompiles:
    def test_valid_belief_is_invertible(self):
        mapping = preset("No.2").mapping
        belief = BeliefMapping.from_mapping(mapping)
        compiled = CompiledMapping.from_belief(belief, require_inverse=True)
        assert compiled.invertible
        pool = _pool(mapping, 256, seed=3)
        banks, rows, columns = compiled.translate(pool)
        assert np.array_equal(compiled.encode(banks, rows, columns), pool)

    def test_singular_belief_raises_typed_error(self):
        # Two identical functions: the forward matrix has dependent rows.
        belief = BeliefMapping(
            address_bits=6,
            bank_functions=(0b11, 0b11),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        with pytest.raises(SingularMappingError):
            CompiledMapping.from_belief(belief, require_inverse=True)

    def test_singular_belief_forward_only_by_default(self):
        belief = BeliefMapping(
            address_bits=6,
            bank_functions=(0b11, 0b11),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        compiled = CompiledMapping.from_belief(belief)
        assert not compiled.invertible
        banks, rows, columns = compiled.translate(np.arange(64, dtype=np.uint64))
        for addr in range(64):
            assert int(banks[addr]) == belief.bank_of(addr)
            assert int(rows[addr]) == belief.row_of(addr)
        with pytest.raises(SingularMappingError):
            compiled.encode(banks, rows, columns)
        with pytest.raises(SingularMappingError):
            compiled.encode_one(DramAddress(0, 0, 0))
        with pytest.raises(SingularMappingError):
            compiled.same_bank_addresses(0, 1)

    def test_incomplete_belief_compiles_forward_only(self):
        # A claim covering fewer output bits than the address width
        # cannot be square, so no inverse is even attempted.
        belief = BeliefMapping(
            address_bits=8,
            bank_functions=(0b11,),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        compiled = CompiledMapping.from_belief(belief)
        assert not compiled.invertible
        assert len(compiled.dram_mtx) == 5


class TestGenerators:
    def test_same_bank_addresses(self):
        mapping = preset("No.1").mapping
        compiled = mapping.compiled
        addrs = compiled.same_bank_addresses(bank=3, count=100)
        assert len(set(int(a) for a in addrs)) == 100
        for addr in addrs:
            assert mapping.bank_of(int(addr)) == 3

    def test_same_bank_capacity_and_range_checks(self):
        compiled = preset("No.1").mapping.compiled
        with pytest.raises(MappingError, match="out of range"):
            compiled.same_bank_addresses(bank=compiled.banks, count=1)
        available = compiled.rows * compiled.columns
        with pytest.raises(MappingError, match="holds only"):
            compiled.same_bank_addresses(bank=0, count=available + 1)
        # column offset shrinks capacity
        with pytest.raises(MappingError, match="holds only"):
            compiled.same_bank_addresses(
                bank=0, count=compiled.rows + 1, column=compiled.columns - 1
            )

    def test_adjacent_row_sets_layout(self):
        mapping = preset("No.2").mapping
        compiled = mapping.compiled
        victims, above, below = compiled.adjacent_row_sets(bank=5, count=20)
        for victim, upper, lower in zip(victims, above, below):
            v = mapping.dram_address(int(victim))
            a = mapping.dram_address(int(upper))
            b = mapping.dram_address(int(lower))
            assert v.bank == a.bank == b.bank == 5
            assert a.row == v.row - 1
            assert b.row == v.row + 1
        rows = [mapping.row_of(int(v)) for v in victims]
        assert rows == sorted(rows)
        assert all(later - earlier >= 3 for earlier, later in zip(rows, rows[1:]))

    def test_adjacent_row_sets_checks(self):
        compiled = preset("No.1").mapping.compiled
        with pytest.raises(MappingError, match="stride"):
            compiled.adjacent_row_sets(bank=0, count=1, stride=0)
        with pytest.raises(MappingError, match="column"):
            compiled.adjacent_row_sets(bank=0, count=1, column=compiled.columns)
        capacity = (compiled.rows - 2 + 2) // 3
        with pytest.raises(MappingError, match="fits only"):
            compiled.adjacent_row_sets(bank=0, count=capacity + 1)


class TestPickling:
    def test_compiled_pickles_small(self):
        """Lazy tables: the pickled compile is masks only, not 512 KiB LUTs."""
        import pickle

        mapping = preset("No.2").mapping
        compiled = CompiledMapping.from_mapping(mapping)
        payload = pickle.dumps(compiled)
        assert len(payload) < 8192
        back = pickle.loads(payload)
        assert back == compiled
        pool = _pool(mapping, 64)
        banks, rows, columns = back.translate(pool)
        assert np.array_equal(back.encode(banks, rows, columns), pool)
