"""Unit tests for repro.dram.spec (data-sheet knowledge)."""

import pytest

from repro.dram.errors import GeometryError
from repro.dram.spec import (
    DdrGeneration,
    DdrTimings,
    chip_spec,
    default_timings,
    rank_page_bytes,
)


class TestChipSpec:
    def test_ddr3_x8(self):
        spec = chip_spec(DdrGeneration.DDR3, 8)
        assert spec.banks == 8
        assert spec.page_bytes == 1024
        assert spec.chips_per_rank == 8

    def test_ddr4_x8_has_16_banks(self):
        assert chip_spec(DdrGeneration.DDR4, 8).banks == 16

    def test_ddr4_x16_has_8_banks(self):
        """x16 DDR4 parts have 2 bank groups only — this is why machine No.7
        (DDR4, 1 rank) has just 8 banks."""
        assert chip_spec(DdrGeneration.DDR4, 16).banks == 8

    def test_unknown_width_rejected(self):
        with pytest.raises(GeometryError, match="x32"):
            chip_spec(DdrGeneration.DDR3, 32)

    @pytest.mark.parametrize("generation", list(DdrGeneration))
    @pytest.mark.parametrize("width", [8, 16])
    def test_rank_page_8kib_for_consumer_widths(self, generation, width):
        """x8 and x16 ranks have an 8 KiB page -> 13 column bits, as in all
        rows of Table II (consumer DIMMs are x8/x16)."""
        assert rank_page_bytes(chip_spec(generation, width)) == 8192

    @pytest.mark.parametrize("generation", list(DdrGeneration))
    def test_rank_page_16kib_for_x4(self, generation):
        """x4 (server RDIMM) ranks gang 16 chips -> 16 KiB pages."""
        assert rank_page_bytes(chip_spec(generation, 4)) == 16384


class TestTimings:
    def test_latency_ordering(self):
        for generation in DdrGeneration:
            timings = default_timings(generation)
            assert timings.row_hit_ns < timings.row_closed_ns < timings.row_conflict_ns

    def test_conflict_is_sum(self):
        timings = default_timings(DdrGeneration.DDR3)
        assert timings.row_conflict_ns == pytest.approx(
            timings.trp + timings.trcd + timings.tcas
        )

    def test_refresh_slower_than_interval(self):
        timings = default_timings(DdrGeneration.DDR4)
        assert timings.trfc < timings.trefi

    def test_negative_timing_rejected(self):
        with pytest.raises(GeometryError):
            DdrTimings(trcd=-1, trp=1, tcas=1, tras=1, trefi=1, trfc=1)


class TestSpeedBins:
    def test_all_bins_valid(self):
        from repro.dram.spec import speed_bin_names, timings_for_bin

        for name in speed_bin_names():
            timings = timings_for_bin(name)
            assert timings.row_hit_ns < timings.row_conflict_ns

    def test_nanoseconds_stable_across_bins(self):
        """The timing-channel gap barely changes with the speed bin — the
        reason the reverse-engineering works on any DIMM speed."""
        from repro.dram.spec import speed_bin_names, timings_for_bin

        gaps = [
            timings_for_bin(name).row_conflict_ns - timings_for_bin(name).row_hit_ns
            for name in speed_bin_names()
        ]
        assert max(gaps) / min(gaps) < 1.15

    def test_default_bins_match_generation_defaults(self):
        from repro.dram.spec import timings_for_bin

        assert timings_for_bin("DDR3-1600").tcas == pytest.approx(13.75)
        assert timings_for_bin("DDR4-2400").trcd == pytest.approx(14.16)

    def test_unknown_bin(self):
        from repro.dram.spec import timings_for_bin

        with pytest.raises(GeometryError, match="DDR5-4800"):
            timings_for_bin("DDR5-4800")
