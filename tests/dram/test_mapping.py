"""Unit and property tests for repro.dram.mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bits import mask_of_bits
from repro.dram.errors import MappingError
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import AddressMapping, DramAddress
from repro.dram.presets import PRESETS, preset
from repro.dram.spec import DdrGeneration

GIB = 2**30


def no1_mapping() -> AddressMapping:
    """The paper's No.1 (Sandy Bridge) mapping."""
    return preset("No.1").mapping


def small_mapping() -> AddressMapping:
    """A tiny 1 MiB machine for exhaustive tests: 1 channel, 2 banks."""
    geometry = DramGeometry(
        generation=DdrGeneration.DDR3,
        total_bytes=2**20,
        channels=1,
        dimms_per_channel=1,
        ranks_per_dimm=1,
        banks_per_rank=2,
        row_bytes=4096,
    )
    return AddressMapping(
        geometry=geometry,
        bank_functions=(mask_of_bits([12, 13]),),
        row_bits=tuple(range(13, 20)),
        column_bits=tuple(range(0, 12)),
    )


class TestValidation:
    def test_presets_all_valid(self):
        for name, machine in PRESETS.items():
            assert machine.mapping.geometry.address_bits >= 32, name

    def test_wrong_function_count(self):
        mapping = no1_mapping()
        with pytest.raises(MappingError, match="bank functions"):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=mapping.bank_functions[:-1],
                row_bits=mapping.row_bits,
                column_bits=mapping.column_bits,
            )

    def test_dependent_functions_rejected(self):
        mapping = no1_mapping()
        functions = list(mapping.bank_functions)
        functions[0] = functions[1] ^ functions[2]  # (14,17)^(15,18)
        bad = functions[:3] + [functions[1] ^ functions[2]]
        with pytest.raises(MappingError):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=tuple(bad),
                row_bits=mapping.row_bits,
                column_bits=mapping.column_bits,
            )

    def test_row_column_overlap_rejected(self):
        mapping = no1_mapping()
        with pytest.raises(MappingError, match="overlap"):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=mapping.bank_functions,
                row_bits=mapping.row_bits,
                column_bits=mapping.column_bits[:-1] + (mapping.row_bits[0],),
            )

    def test_uncovered_bit_rejected(self):
        """Dropping bit 0 from the columns leaves it unmapped."""
        mapping = no1_mapping()
        with pytest.raises(MappingError):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=mapping.bank_functions,
                row_bits=mapping.row_bits,
                column_bits=(14,) + mapping.column_bits[1:],
            )

    def test_out_of_range_bit_rejected(self):
        mapping = no1_mapping()
        with pytest.raises(MappingError, match="exceed"):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=mapping.bank_functions,
                row_bits=mapping.row_bits[:-1] + (40,),
                column_bits=mapping.column_bits,
            )

    def test_zero_function_rejected(self):
        mapping = no1_mapping()
        with pytest.raises(MappingError):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=(0,) + mapping.bank_functions[1:],
                row_bits=mapping.row_bits,
                column_bits=mapping.column_bits,
            )


class TestDecode:
    def test_no1_known_bank(self):
        """Hand-computed example on the Sandy Bridge mapping."""
        mapping = no1_mapping()
        # Address with bits 6 and 14 set: function (6) -> 1, (14,17) -> 1.
        addr = (1 << 6) | (1 << 14)
        assert mapping.bank_of(addr) == 0b0011

    def test_no1_row_and_column(self):
        mapping = no1_mapping()
        addr = (5 << 17) | (1 << 3)  # row 5, column bit 3 (bit 3 is col idx 3)
        assert mapping.row_of(addr) == 5
        assert mapping.column_of(addr) == 8

    def test_column_skips_bit6(self):
        """On No.1 bit 6 is the channel, not a column: column bits are
        0-5 and 7-13, so bit 7 is column index 6."""
        mapping = no1_mapping()
        assert mapping.column_of(1 << 7) == 1 << 6

    def test_out_of_range_address(self):
        mapping = no1_mapping()
        with pytest.raises(MappingError, match="outside"):
            mapping.bank_of(mapping.geometry.total_bytes)

    def test_dram_address_tuple(self):
        mapping = no1_mapping()
        decoded = mapping.dram_address(0)
        assert decoded == DramAddress(bank=0, row=0, column=0)


class TestEncodeDecodeRoundtrip:
    @given(st.data())
    @settings(max_examples=50)
    def test_decode_encode_roundtrip_all_presets(self, data):
        name = data.draw(st.sampled_from(sorted(PRESETS)))
        mapping = PRESETS[name].mapping
        addr = data.draw(
            st.integers(min_value=0, max_value=mapping.geometry.total_bytes - 1)
        )
        assert mapping.encode(mapping.dram_address(addr)) == addr

    @given(st.data())
    @settings(max_examples=50)
    def test_encode_decode_roundtrip(self, data):
        name = data.draw(st.sampled_from(sorted(PRESETS)))
        mapping = PRESETS[name].mapping
        geometry = mapping.geometry
        dram = DramAddress(
            bank=data.draw(st.integers(0, geometry.total_banks - 1)),
            row=data.draw(st.integers(0, geometry.rows_per_bank - 1)),
            column=data.draw(st.integers(0, geometry.row_bytes - 1)),
        )
        assert mapping.dram_address(mapping.encode(dram)) == dram

    def test_small_mapping_bijective_exhaustive(self):
        mapping = small_mapping()
        seen = set()
        for addr in range(0, 2**20, 977):  # coprime stride sample
            seen.add(mapping.dram_address(addr))
        assert len(seen) == len(range(0, 2**20, 977))

    def test_encode_range_checks(self):
        mapping = small_mapping()
        with pytest.raises(MappingError):
            mapping.encode(DramAddress(bank=2, row=0, column=0))
        with pytest.raises(MappingError):
            mapping.encode(DramAddress(bank=0, row=2**7, column=0))
        with pytest.raises(MappingError):
            mapping.encode(DramAddress(bank=0, row=0, column=4096))


class TestVectorizedDecode:
    def test_matches_scalar(self):
        mapping = no1_mapping()
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, mapping.geometry.total_bytes, 512, dtype=np.uint64)
        banks = mapping.bank_of_array(addrs)
        rows = mapping.row_of_array(addrs)
        columns = mapping.column_of_array(addrs)
        for i in (0, 17, 100, 511):
            addr = int(addrs[i])
            assert banks[i] == mapping.bank_of(addr)
            assert rows[i] == mapping.row_of(addr)
            assert columns[i] == mapping.column_of(addr)

    def test_bank_range(self):
        for name, machine in PRESETS.items():
            mapping = machine.mapping
            rng = np.random.default_rng(5)
            addrs = rng.integers(0, mapping.geometry.total_bytes, 256, dtype=np.uint64)
            banks = mapping.bank_of_array(addrs)
            assert banks.max() < mapping.geometry.total_banks, name


class TestLookupTableDecode:
    """The packed-parity-table decoders must agree exactly with the retained
    popcount/shift reference implementations on every preset — the GF(2)
    equality the perf acceptance criteria require."""

    def test_every_preset_agrees_with_reference(self):
        for name, machine in PRESETS.items():
            mapping = machine.mapping
            rng = np.random.default_rng(13)
            addrs = rng.integers(0, mapping.geometry.total_bytes, 1024, dtype=np.uint64)
            np.testing.assert_array_equal(
                mapping.bank_of_array(addrs),
                mapping.bank_of_array_popcount(addrs),
                err_msg=name,
            )
            np.testing.assert_array_equal(
                mapping.row_of_array(addrs),
                mapping.row_of_array_shift(addrs),
                err_msg=name,
            )
            columns_ref = np.array(
                [mapping.column_of(int(addr)) for addr in addrs[:128]], dtype=np.uint64
            )
            np.testing.assert_array_equal(
                mapping.column_of_array(addrs[:128]), columns_ref, err_msg=name
            )

    def test_bank_dtype_preserved(self):
        mapping = no1_mapping()
        addrs = np.arange(64, dtype=np.uint64)
        assert mapping.bank_of_array(addrs).dtype == np.uint32
        assert mapping.row_of_array(addrs).dtype == np.uint64

    def test_tables_survive_pickling(self):
        import pickle

        mapping = no1_mapping()
        addrs = np.arange(256, dtype=np.uint64) << np.uint64(13)
        expected = mapping.bank_of_array(addrs)  # populate the cache first
        clone = pickle.loads(pickle.dumps(mapping))
        np.testing.assert_array_equal(clone.bank_of_array(addrs), expected)


class TestComparison:
    def test_same_bank(self):
        mapping = small_mapping()
        assert mapping.same_bank(0, 1)
        # Flipping bit 12 alone changes the bank function (12,13).
        assert not mapping.same_bank(0, 1 << 12)

    def test_row_conflict(self):
        mapping = small_mapping()
        # Bits 12 and 13 together: bank parity unchanged, row changed.
        assert mapping.is_row_conflict(0, (1 << 12) | (1 << 13))
        assert not mapping.is_row_conflict(0, 1)  # same row
        assert not mapping.is_row_conflict(0, 1 << 12)  # other bank

    def test_equivalent_to_itself(self):
        mapping = no1_mapping()
        assert mapping.equivalent_to(mapping)

    def test_equivalent_under_basis_change(self):
        mapping = no1_mapping()
        functions = list(mapping.bank_functions)
        functions[1] ^= functions[2]  # new basis of the same span
        other = AddressMapping(
            geometry=mapping.geometry,
            bank_functions=tuple(functions),
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        assert mapping.equivalent_to(other)
        assert other.equivalent_to(mapping)

    def test_not_equivalent_different_rows(self):
        no1 = preset("No.1").mapping
        no8 = preset("No.8").mapping
        assert not no1.equivalent_to(no8)


class TestDescribe:
    def test_paper_style_ranges(self):
        text = no1_mapping().describe()
        assert "(14, 17)" in text
        assert "17~32" in text
        assert "0~5, 7~13" in text


def adversarial_mapping() -> AddressMapping:
    """Interleaved non-contiguous row/column bits, bank functions
    overlapping both — the layout class most likely to break an encode
    that assumes contiguous components."""
    geometry = preset("No.1").mapping.geometry
    column_bits = tuple(range(0, 26, 2))[:13]
    row_bits = tuple(range(1, 27, 2)) + (26, 28, 30)
    leftover = [
        bit
        for bit in range(geometry.address_bits)
        if bit not in set(column_bits) | set(row_bits)
    ]
    bank_functions = tuple(
        mask_of_bits([bit, column_bits[index + 2], row_bits[index + 3]])
        for index, bit in enumerate(leftover)
    )
    return AddressMapping(
        geometry=geometry,
        bank_functions=bank_functions,
        row_bits=row_bits,
        column_bits=column_bits,
    )


class TestAdversarialEncodeRoundtrip:
    """Satellite audit: encode must solve the GF(2) system correctly for
    non-contiguous, bank-overlapping layouts — not just Intel presets."""

    def test_decode_encode_identity(self):
        mapping = adversarial_mapping()
        pool = np.random.default_rng(11).integers(
            0, 1 << mapping.geometry.address_bits, 500, dtype=np.uint64
        )
        for addr in pool:
            addr = int(addr)
            assert mapping.encode(mapping.dram_address(addr)) == addr

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, data):
        mapping = adversarial_mapping()
        bank = data.draw(
            st.integers(0, mapping.geometry.total_banks - 1), label="bank"
        )
        row = data.draw(st.integers(0, (1 << len(mapping.row_bits)) - 1), "row")
        column = data.draw(
            st.integers(0, (1 << len(mapping.column_bits)) - 1), "column"
        )
        phys = mapping.encode(DramAddress(bank, row, column))
        decoded = mapping.dram_address(phys)
        assert (decoded.bank, decoded.row, decoded.column) == (bank, row, column)

    def test_compiled_agrees_on_adversarial_layout(self):
        mapping = adversarial_mapping()
        compiled = mapping.compiled
        pool = np.random.default_rng(12).integers(
            0, 1 << mapping.geometry.address_bits, 2048, dtype=np.uint64
        )
        banks, rows, columns = compiled.translate(pool)
        assert np.array_equal(compiled.encode(banks, rows, columns), pool)
        for index in range(0, 2048, 64):
            scalar = mapping.dram_address(int(pool[index]))
            assert (scalar.bank, scalar.row, scalar.column) == (
                int(banks[index]),
                int(rows[index]),
                int(columns[index]),
            )


class TestEquivalenceUnderBasisShuffle:
    """Satellite audit: equivalent_to must be span-based for every
    preset, not just a hand-picked pair of functions."""

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_equivalent_after_basis_shuffle(self, name):
        mapping = PRESETS[name].mapping
        rng = np.random.default_rng(13)
        functions = list(mapping.bank_functions)
        # Random invertible row operations: XOR one function into another.
        for _ in range(16):
            target, source = rng.choice(len(functions), 2, replace=False)
            functions[target] ^= functions[source]
        shuffled = AddressMapping(
            geometry=mapping.geometry,
            bank_functions=tuple(functions),
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        assert mapping.equivalent_to(shuffled)
        assert shuffled.equivalent_to(mapping)

    def test_shrunk_span_not_equivalent(self):
        mapping = preset("No.1").mapping
        functions = list(mapping.bank_functions)
        functions[0] = functions[1] ^ functions[2]  # now dependent set
        with pytest.raises(MappingError):
            AddressMapping(
                geometry=mapping.geometry,
                bank_functions=tuple(functions),
                row_bits=mapping.row_bits,
                column_bits=mapping.column_bits,
            )
