"""Tests for the random-mapping generator and the end-to-end fuzz of
DRAMDig against machines nobody hand-picked."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import gf2
from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.probe import ProbeConfig
from repro.dram.random_mapping import random_geometry, random_mapping
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


class TestGenerator:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_always_valid(self, seed):
        """Every generated mapping passes AddressMapping validation (the
        constructor raises otherwise, so construction success is the
        assertion) and has independent functions."""
        mapping = random_mapping(np.random.default_rng(seed))
        assert gf2.is_independent(mapping.bank_functions)
        assert len(mapping.row_bits) == mapping.geometry.num_row_bits

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_geometry_plausible(self, seed):
        geometry = random_geometry(np.random.default_rng(seed))
        assert 4 * 2**30 <= geometry.total_bytes <= 32 * 2**30
        assert geometry.total_banks <= 64
        assert geometry.num_column_bits == 13

    def test_distribution_covers_wide_hashes(self):
        """Some generated dual-channel machines must carry a wide hash."""
        wide = 0
        for seed in range(60):
            mapping = random_mapping(np.random.default_rng(seed))
            if any(bin(f).count("1") > 2 for f in mapping.bank_functions):
                wide += 1
        assert wide > 5

    def test_rows_on_top_columns_on_bottom(self):
        for seed in range(20):
            mapping = random_mapping(np.random.default_rng(seed))
            assert max(mapping.row_bits) == mapping.geometry.address_bits - 1
            assert mapping.column_bits[0] == 0


class TestFuzzDramDig:
    """The reproduction's strongest property: DRAMDig recovers *random*
    Intel-shaped machines, not just the nine the paper picked."""

    @pytest.mark.parametrize("seed", range(6))
    def test_recovers_random_machine(self, seed):
        mapping = random_mapping(np.random.default_rng(seed))
        machine = SimulatedMachine(mapping=mapping, seed=seed)
        config = DramDigConfig(probe=ProbeConfig(rounds=200))
        result = DramDig(config).run(machine)
        assert result.mapping.equivalent_to(mapping), (
            seed,
            mapping.describe(),
            result.mapping.describe(),
        )

    def test_recovers_noiseless_quickly(self):
        mapping = random_mapping(np.random.default_rng(99))
        machine = SimulatedMachine(
            mapping=mapping, seed=0, noise=NoiseParams.noiseless()
        )
        result = DramDig(DramDigConfig(probe=ProbeConfig(rounds=100))).run(machine)
        assert result.retries == 0
        assert result.mapping.equivalent_to(mapping)


class TestRandomMappingRoundtrips:
    """The encode/decode bijection must hold on generated machines too."""

    @given(st.integers(min_value=0, max_value=5000), st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=60, deadline=None)
    def test_decode_encode_roundtrip(self, gen_seed, raw_addr):
        mapping = random_mapping(np.random.default_rng(gen_seed))
        address = raw_addr % mapping.geometry.total_bytes
        assert mapping.encode(mapping.dram_address(address)) == address

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip(self, gen_seed):
        from repro.dram.serialization import mapping_from_dict, mapping_to_dict

        mapping = random_mapping(np.random.default_rng(gen_seed))
        assert mapping_from_dict(mapping_to_dict(mapping)) == mapping
