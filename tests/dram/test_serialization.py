"""Tests for mapping JSON serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.belief import BeliefMapping
from repro.dram.errors import MappingError
from repro.dram.presets import PRESETS, preset
from repro.dram.serialization import (
    belief_from_dict,
    belief_to_dict,
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)


class TestMappingRoundtrip:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_roundtrip(self, name):
        mapping = PRESETS[name].mapping
        restored = mapping_from_dict(mapping_to_dict(mapping))
        assert restored == mapping

    def test_file_roundtrip(self, tmp_path):
        mapping = preset("No.6").mapping
        path = tmp_path / "no6.json"
        save_mapping(mapping, path)
        assert load_mapping(path) == mapping

    def test_json_is_paper_notation(self):
        data = mapping_to_dict(preset("No.1").mapping)
        assert [14, 17] in data["bank_functions"]
        assert data["geometry"]["generation"] == "DDR3"

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "m.json"
        save_mapping(preset("No.4").mapping, path)
        parsed = json.loads(path.read_text())
        assert parsed["format"] == "dramdig-mapping-v1"

    def test_wrong_format_rejected(self):
        with pytest.raises(MappingError, match="format"):
            mapping_from_dict({"format": "something-else"})

    def test_corrupted_document_fails_validation(self):
        data = mapping_to_dict(preset("No.1").mapping)
        data["row_bits"] = data["row_bits"][:-1]  # drop a row bit
        with pytest.raises(MappingError):
            mapping_from_dict(data)


class TestBeliefRoundtrip:
    def test_roundtrip(self):
        belief = BeliefMapping.from_mapping(preset("No.2").mapping)
        restored = belief_from_dict(belief_to_dict(belief))
        assert restored == belief

    def test_invalid_belief_still_roundtrips(self):
        """Beliefs are unvalidated on purpose — garbage in, same garbage
        out."""
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=(1 << 5,),
            row_bits=(30, 31),
            column_bits=(0,),
        )
        assert belief_from_dict(belief_to_dict(belief)) == belief

    def test_wrong_format_rejected(self):
        with pytest.raises(MappingError):
            belief_from_dict({"format": "dramdig-mapping-v1"})

    @given(st.sampled_from(sorted(PRESETS)))
    @settings(max_examples=9, deadline=None)
    def test_belief_dict_is_json_safe(self, name):
        data = belief_to_dict(BeliefMapping.from_mapping(PRESETS[name].mapping))
        assert belief_from_dict(json.loads(json.dumps(data))) is not None


class TestCompiledRoundtrip:
    """The dramdig-compiled-v1 format for the GF(2) matrix pair."""

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_roundtrip(self, name):
        from repro.dram.serialization import compiled_from_dict, compiled_to_dict

        compiled = PRESETS[name].mapping.compiled
        assert compiled_from_dict(compiled_to_dict(compiled)) == compiled

    def test_file_roundtrip(self, tmp_path):
        from repro.dram.serialization import load_compiled, save_compiled

        compiled = preset("No.2").mapping.compiled
        path = tmp_path / "compiled.json"
        save_compiled(compiled, path)
        back = load_compiled(path)
        assert back == compiled
        assert back.invertible

    def test_forward_only_roundtrips(self):
        from repro.dram.compiled import CompiledMapping
        from repro.dram.serialization import compiled_from_dict, compiled_to_dict

        belief = BeliefMapping(
            address_bits=6,
            bank_functions=(0b11, 0b11),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        compiled = CompiledMapping.from_belief(belief)
        back = compiled_from_dict(compiled_to_dict(compiled))
        assert back == compiled
        assert not back.invertible

    def test_wrong_format_rejected(self):
        from repro.dram.serialization import compiled_from_dict

        with pytest.raises(MappingError, match="dramdig-compiled-v1"):
            compiled_from_dict({"format": "dramdig-mapping-v1"})

    def test_tampered_inverse_rejected(self):
        from repro.dram.serialization import compiled_from_dict, compiled_to_dict

        data = compiled_to_dict(preset("No.1").mapping.compiled)
        data["addr_mtx"][0] = data["addr_mtx"][1]
        with pytest.raises(MappingError, match="does not invert"):
            compiled_from_dict(data)

    def test_inconsistent_widths_rejected(self):
        from repro.dram.serialization import compiled_from_dict, compiled_to_dict

        data = compiled_to_dict(preset("No.1").mapping.compiled)
        data["bank_width"] += 1
        with pytest.raises(MappingError, match="partition"):
            compiled_from_dict(data)

    def test_out_of_range_row_rejected(self):
        from repro.dram.serialization import compiled_from_dict, compiled_to_dict

        data = compiled_to_dict(preset("No.1").mapping.compiled)
        data["dram_mtx"][0] = [data["address_bits"] + 3]
        with pytest.raises(MappingError, match="exceeds"):
            compiled_from_dict(data)


class TestBackwardCompatibility:
    """Documents written before the compiled format existed must load."""

    # A verbatim dramdig-mapping-v1 document (machine No.1's layout) as
    # written by save_mapping() before this release: the compiled format
    # is additive, so this must keep loading — and must compile.
    _V1_DOCUMENT = """
    {
      "format": "dramdig-mapping-v1",
      "geometry": {
        "generation": "DDR3",
        "total_bytes": 8589934592,
        "channels": 1,
        "dimms_per_channel": 1,
        "ranks_per_dimm": 2,
        "banks_per_rank": 8,
        "row_bytes": 8192,
        "ecc": false
      },
      "bank_functions": [[6], [14, 17], [15, 18], [16, 19]],
      "row_bits": [17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29,
                   30, 31, 32],
      "column_bits": [0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 13]
    }
    """

    def test_pre_compiled_mapping_document_loads(self):
        mapping = mapping_from_dict(json.loads(self._V1_DOCUMENT))
        assert mapping.equivalent_to(preset("No.1").mapping)
        compiled = mapping.compiled
        assert compiled.invertible
        assert compiled.translate_one(1 << 6).bank == 1
