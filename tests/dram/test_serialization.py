"""Tests for mapping JSON serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.belief import BeliefMapping
from repro.dram.errors import MappingError
from repro.dram.presets import PRESETS, preset
from repro.dram.serialization import (
    belief_from_dict,
    belief_to_dict,
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)


class TestMappingRoundtrip:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_roundtrip(self, name):
        mapping = PRESETS[name].mapping
        restored = mapping_from_dict(mapping_to_dict(mapping))
        assert restored == mapping

    def test_file_roundtrip(self, tmp_path):
        mapping = preset("No.6").mapping
        path = tmp_path / "no6.json"
        save_mapping(mapping, path)
        assert load_mapping(path) == mapping

    def test_json_is_paper_notation(self):
        data = mapping_to_dict(preset("No.1").mapping)
        assert [14, 17] in data["bank_functions"]
        assert data["geometry"]["generation"] == "DDR3"

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "m.json"
        save_mapping(preset("No.4").mapping, path)
        parsed = json.loads(path.read_text())
        assert parsed["format"] == "dramdig-mapping-v1"

    def test_wrong_format_rejected(self):
        with pytest.raises(MappingError, match="format"):
            mapping_from_dict({"format": "something-else"})

    def test_corrupted_document_fails_validation(self):
        data = mapping_to_dict(preset("No.1").mapping)
        data["row_bits"] = data["row_bits"][:-1]  # drop a row bit
        with pytest.raises(MappingError):
            mapping_from_dict(data)


class TestBeliefRoundtrip:
    def test_roundtrip(self):
        belief = BeliefMapping.from_mapping(preset("No.2").mapping)
        restored = belief_from_dict(belief_to_dict(belief))
        assert restored == belief

    def test_invalid_belief_still_roundtrips(self):
        """Beliefs are unvalidated on purpose — garbage in, same garbage
        out."""
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=(1 << 5,),
            row_bits=(30, 31),
            column_bits=(0,),
        )
        assert belief_from_dict(belief_to_dict(belief)) == belief

    def test_wrong_format_rejected(self):
        with pytest.raises(MappingError):
            belief_from_dict({"format": "dramdig-mapping-v1"})

    @given(st.sampled_from(sorted(PRESETS)))
    @settings(max_examples=9, deadline=None)
    def test_belief_dict_is_json_safe(self, name):
        data = belief_to_dict(BeliefMapping.from_mapping(PRESETS[name].mapping))
        assert belief_from_dict(json.loads(json.dumps(data))) is not None
