"""Tests for the exception hierarchy."""

import pytest

from repro.dram import errors


def test_all_errors_are_repro_errors():
    for name in errors.__all__:
        exception_type = getattr(errors, name)
        if name == "ReproError":
            continue
        assert issubclass(exception_type, errors.ReproError), name


def test_tool_stuck_carries_partial_result():
    error = errors.ToolStuckError("stuck", partial_result=(1, 2))
    assert error.partial_result == (1, 2)
    assert "stuck" in str(error)


def test_tool_stuck_partial_default():
    assert errors.ToolStuckError("x").partial_result is None


def test_timeout_carries_elapsed():
    error = errors.ToolTimeoutError("dead", elapsed_seconds=7200.0)
    assert error.elapsed_seconds == 7200.0


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.PartitionError("nope")
