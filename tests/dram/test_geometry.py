"""Unit tests for repro.dram.geometry."""

import pytest

from repro.dram.errors import GeometryError
from repro.dram.geometry import DramGeometry
from repro.dram.spec import DdrGeneration

GIB = 2**30


def make_geometry(**overrides):
    params = dict(
        generation=DdrGeneration.DDR3,
        total_bytes=8 * GIB,
        channels=2,
        dimms_per_channel=1,
        ranks_per_dimm=1,
        banks_per_rank=8,
    )
    params.update(overrides)
    return DramGeometry(**params)


class TestDerivedCounts:
    def test_no1_machine_counts(self):
        """Sandy Bridge No.1: 16 banks, 4 bank bits, 13 column, 16 row bits."""
        geometry = make_geometry()
        assert geometry.total_banks == 16
        assert geometry.address_bits == 33
        assert geometry.num_bank_bits == 4
        assert geometry.num_column_bits == 13
        assert geometry.num_row_bits == 16

    def test_rows_per_bank(self):
        geometry = make_geometry()
        assert geometry.rows_per_bank == 8 * GIB // (16 * 8192)
        assert geometry.rows_per_bank == 2**16

    def test_config_quadruple(self):
        geometry = make_geometry(ranks_per_dimm=2)
        assert geometry.config_quadruple == (2, 1, 2, 8)

    def test_ddr4_16gib(self):
        geometry = make_geometry(
            generation=DdrGeneration.DDR4,
            total_bytes=16 * GIB,
            ranks_per_dimm=2,
            banks_per_rank=16,
        )
        assert geometry.total_banks == 64
        assert geometry.num_bank_bits == 6
        assert geometry.num_row_bits == 15

    def test_sizes_multiply_up(self):
        geometry = make_geometry()
        total = geometry.total_banks * geometry.rows_per_bank * geometry.row_bytes
        assert total == geometry.total_bytes


class TestValidation:
    def test_non_power_of_two_size(self):
        with pytest.raises(GeometryError, match="power of two"):
            make_geometry(total_bytes=3 * GIB)

    def test_non_power_of_two_channels(self):
        with pytest.raises(GeometryError, match="power of two"):
            make_geometry(channels=3)

    def test_zero_banks(self):
        with pytest.raises(GeometryError):
            make_geometry(banks_per_rank=0)

    def test_too_many_banks_for_size(self):
        with pytest.raises(GeometryError, match="does not fit"):
            make_geometry(total_bytes=2**13, banks_per_rank=8)


class TestDescribe:
    def test_mentions_size_and_quad(self):
        text = make_geometry().describe()
        assert "8GiB" in text
        assert "(2, 1, 1, 8)" in text
        assert "DDR3" in text
