"""Tests for the mapping explainer."""

import pytest

from repro.dram.explain import explain_bit, explain_mapping, layout_lines
from repro.dram.presets import PRESETS, preset


class TestExplainBit:
    def test_pure_row(self):
        role = explain_bit(preset("No.1").mapping, 25)
        assert role.row_index == 8
        assert role.column_index is None
        assert role.functions == ()
        assert not role.is_shared

    def test_shared_row(self):
        """Bit 17 of No.1 is row[0] and feeds function (14,17)."""
        role = explain_bit(preset("No.1").mapping, 17)
        assert role.row_index == 0
        assert role.functions == (1,)
        assert role.is_shared
        assert "(shared)" in role.describe()

    def test_channel_bit(self):
        role = explain_bit(preset("No.1").mapping, 6)
        assert role.row_index is None
        assert role.column_index is None
        assert role.functions == (0,)
        assert not role.is_shared

    def test_shared_column(self):
        """Bit 8 of No.2 is a column and feeds the wide hash."""
        role = explain_bit(preset("No.2").mapping, 8)
        assert role.column_index is not None
        assert role.functions
        assert role.is_shared

    def test_bit_feeding_two_functions(self):
        """Bit 18 of No.2 feeds (14,18) and the wide hash, and is row[0]."""
        role = explain_bit(preset("No.2").mapping, 18)
        assert len(role.functions) == 2
        assert role.row_index == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            explain_bit(preset("No.1").mapping, 33)


class TestLayout:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_bit_has_a_role(self, name):
        """No '(unused)' lines: validated mappings cover every bit."""
        lines = layout_lines(PRESETS[name].mapping)
        assert len(lines) == PRESETS[name].geometry.address_bits
        assert not any("(unused)" in line for line in lines)

    def test_msb_first(self):
        lines = layout_lines(preset("No.1").mapping)
        assert lines[0].startswith(" 32")
        assert lines[-1].strip().startswith("0")


class TestExplainMapping:
    def test_shared_bits_section(self):
        text = explain_mapping(preset("No.2").mapping)
        assert "shared bits" in text
        assert "bit 18" in text
        assert "bank0 = XOR of bits (14, 18)" in text

    def test_no_shared_section_when_none(self):
        """A mapping without shared bits (hypothetical) would omit the
        section; all paper machines have shared bits, so check a simple
        property instead: the section lists exactly the shared bits."""
        text = explain_mapping(preset("No.4").mapping)
        assert text.count("(shared)") >= 3  # 16, 17, 18 (each listed twice)
