"""Tests pinning the 9 machine presets to the paper's Table II."""

import pytest

from repro.analysis.bits import bits_of_mask
from repro.dram.presets import PRESETS, TABLE2_ORDER, preset, preset_names
from repro.dram.spec import DdrGeneration

GIB = 2**30

# Expected Table II data: config quadruple, bank functions (as bit tuples),
# row bit span, column bits.
TABLE2 = {
    "No.1": {
        "quad": (2, 1, 1, 8),
        "functions": {(6,), (14, 17), (15, 18), (16, 19)},
        "rows": set(range(17, 33)),
        "columns": set(range(0, 6)) | set(range(7, 14)),
        "gib": 8,
        "ddr": DdrGeneration.DDR3,
    },
    "No.2": {
        "quad": (2, 1, 2, 8),
        "functions": {(14, 18), (15, 19), (16, 20), (17, 21), (7, 8, 9, 12, 13, 18, 19)},
        "rows": set(range(18, 33)),
        "columns": set(range(0, 7)) | set(range(8, 14)),
        "gib": 8,
        "ddr": DdrGeneration.DDR3,
    },
    "No.3": {
        "quad": (1, 1, 2, 8),
        "functions": {(13, 17), (14, 18), (15, 19), (16, 20)},
        "rows": set(range(17, 32)),
        "columns": set(range(0, 13)),
        "gib": 4,
        "ddr": DdrGeneration.DDR3,
    },
    "No.4": {
        "quad": (1, 1, 1, 8),
        "functions": {(13, 16), (14, 17), (15, 18)},
        "rows": set(range(16, 32)),
        "columns": set(range(0, 13)),
        "gib": 4,
        "ddr": DdrGeneration.DDR3,
    },
    "No.5": {
        "quad": (2, 1, 2, 8),
        "functions": {(14, 18), (15, 19), (16, 20), (17, 21), (7, 8, 9, 12, 13, 18, 19)},
        # Paper erratum: printed 18~32 cannot address 16 GiB; see presets.py.
        "rows": set(range(18, 34)),
        "columns": set(range(0, 7)) | set(range(8, 14)),
        "gib": 16,
        "ddr": DdrGeneration.DDR3,
    },
    "No.6": {
        "quad": (2, 1, 2, 16),
        "functions": {
            (7, 14),
            (15, 19),
            (16, 20),
            (17, 21),
            (18, 22),
            (8, 9, 12, 13, 18, 19),
        },
        "rows": set(range(19, 34)),
        "columns": set(range(0, 8)) | set(range(9, 14)),
        "gib": 16,
        "ddr": DdrGeneration.DDR4,
    },
    "No.7": {
        "quad": (1, 1, 1, 8),
        "functions": {(6, 13), (14, 16), (15, 17)},
        "rows": set(range(16, 32)),
        "columns": set(range(0, 13)),
        "gib": 4,
        "ddr": DdrGeneration.DDR4,
    },
    "No.8": {
        "quad": (1, 1, 1, 16),
        "functions": {(6, 13), (14, 17), (15, 18), (16, 19)},
        "rows": set(range(17, 33)),
        "columns": set(range(0, 13)),
        "gib": 8,
        "ddr": DdrGeneration.DDR4,
    },
    "No.9": {
        "quad": (2, 1, 2, 16),
        "functions": {
            (7, 14),
            (15, 19),
            (16, 20),
            (17, 21),
            (18, 22),
            (8, 9, 12, 13, 18, 19),
        },
        "rows": set(range(19, 34)),
        "columns": set(range(0, 8)) | set(range(9, 14)),
        "gib": 16,
        "ddr": DdrGeneration.DDR4,
    },
}


@pytest.mark.parametrize("name", sorted(TABLE2))
def test_preset_matches_table2(name):
    machine = preset(name)
    expected = TABLE2[name]
    mapping = machine.mapping
    assert machine.geometry.config_quadruple == expected["quad"]
    assert machine.geometry.total_bytes == expected["gib"] * GIB
    assert machine.geometry.generation == expected["ddr"]
    assert {bits_of_mask(m) for m in mapping.bank_functions} == expected["functions"]
    assert set(mapping.row_bits) == expected["rows"]
    assert set(mapping.column_bits) == expected["columns"]


def test_all_nine_presets_present():
    assert set(PRESETS) == set(TABLE2)
    assert preset_names() == TABLE2_ORDER == tuple(f"No.{i}" for i in range(1, 10))


def test_unknown_preset_raises():
    with pytest.raises(KeyError, match="No.6"):
        preset("No.10")


def test_xiao_compatibility_matches_paper():
    """Section IV-A: Xiao et al.'s tool fails on No.2 and No.6-9."""
    failing = {name for name, m in PRESETS.items() if not m.xiao_compatible}
    assert failing == {"No.2", "No.6", "No.7", "No.8", "No.9"}


def test_microarchitectures():
    assert preset("No.1").microarchitecture == "Sandy Bridge"
    assert preset("No.9").microarchitecture == "Coffee Lake"


def test_vulnerability_ordering():
    """No.2 is the most flip-prone machine in Table III; No.5 barely flips."""
    assert preset("No.2").hammer_vulnerability > preset("No.1").hammer_vulnerability
    assert preset("No.5").hammer_vulnerability < preset("No.1").hammer_vulnerability / 10
