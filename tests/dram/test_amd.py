"""Tests for the AMD documented mapping — and DRAMDig's generality on it."""

import pytest

from repro.analysis.bits import bits_of_mask
from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.probe import ProbeConfig
from repro.dram.amd import amd_family15h_mapping, amd_reference_geometry
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

FAST = DramDigConfig(probe=ProbeConfig(rounds=200))


class TestMapping:
    def test_swizzled_functions_are_three_bit(self):
        mapping = amd_family15h_mapping()
        for mask in mapping.bank_functions:
            assert len(bits_of_mask(mask)) == 3

    def test_swizzle_structure(self):
        """bank[i] = A[13+i] ^ A[17+i] ^ A[21+i] on the 8 GiB reference."""
        mapping = amd_family15h_mapping()
        assert bits_of_mask(mapping.bank_functions[0]) == (13, 17, 21)
        assert bits_of_mask(mapping.bank_functions[1]) == (14, 18, 22)
        assert bits_of_mask(mapping.bank_functions[2]) == (15, 19, 23)

    def test_unswizzled_is_naive(self):
        mapping = amd_family15h_mapping(swizzle=False)
        for mask in mapping.bank_functions:
            assert len(bits_of_mask(mask)) == 1

    def test_geometry_defaults(self):
        geometry = amd_reference_geometry()
        assert geometry.total_banks == 8
        assert geometry.channels == 1

    def test_shared_rows_exist(self):
        """The swizzle makes six row bits shared with bank functions — more
        shared rows than any Intel machine in Table II."""
        mapping = amd_family15h_mapping()
        function_bits = {
            b for mask in mapping.bank_functions for b in bits_of_mask(mask)
        }
        shared = function_bits & set(mapping.row_bits)
        assert len(shared) == 6


class TestDramDigOnAmd:
    @pytest.mark.parametrize("swizzle", [True, False])
    def test_recovers_documented_mapping(self, swizzle):
        """DRAMDig never assumed Intel's hash shapes; it recovers AMD's
        documented layout (including the 3-bit swizzle that defeats the
        paper's literal two-bit fine-grained procedure)."""
        truth = amd_family15h_mapping(swizzle=swizzle)
        machine = SimulatedMachine(
            mapping=truth, seed=2, microarchitecture="AMD Family 15h"
        )
        result = DramDig(FAST).run(machine)
        assert result.mapping.equivalent_to(truth), result.mapping.describe()

    def test_recovers_noiseless(self):
        truth = amd_family15h_mapping()
        machine = SimulatedMachine(mapping=truth, seed=0, noise=NoiseParams.noiseless())
        result = DramDig(FAST).run(machine)
        assert result.retries == 0
        assert result.mapping.equivalent_to(truth)
