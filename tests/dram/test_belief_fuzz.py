"""Fuzz ``BeliefMapping.agrees_with`` / ``hammer_equivalent`` against
random mappings: the equivalence notions must hold across the whole
generator distribution, not just the nine paper presets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.belief import BeliefMapping
from repro.dram.random_mapping import random_mapping

seeds = st.integers(min_value=0, max_value=5000)


def _shuffled_basis(functions):
    """Another basis of the same GF(2) span (row-reduce by XOR chains)."""
    basis = list(functions)
    for index in range(1, len(basis)):
        basis[index] ^= basis[index - 1]
    return tuple(reversed(basis))


class TestAgreesWith:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_own_belief_agrees(self, seed):
        mapping = random_mapping(np.random.default_rng(seed))
        assert BeliefMapping.from_mapping(mapping).agrees_with(mapping)

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_basis_change_still_agrees(self, seed):
        """Function sets are compared as spans: any XOR re-basis of the
        true functions addresses banks identically and must agree."""
        mapping = random_mapping(np.random.default_rng(seed))
        belief = BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=_shuffled_basis(mapping.bank_functions),
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        assert belief.agrees_with(mapping)
        assert belief.hammer_equivalent(mapping)

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_deformed_span_disagrees(self, seed):
        """Toggling a row bit in one function changes the span (a lone
        row bit is never inside it), so the belief must disagree."""
        mapping = random_mapping(np.random.default_rng(seed))
        functions = list(mapping.bank_functions)
        functions[0] ^= 1 << mapping.row_bits[0]
        belief = BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=tuple(functions),
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        assert not belief.agrees_with(mapping)
        assert not belief.hammer_equivalent(mapping)

    @given(seeds, seeds)
    @settings(max_examples=60, deadline=None)
    def test_cross_machine_beliefs_rarely_agree(self, seed_a, seed_b):
        """A belief built for machine A agrees with machine B only when
        the two generated mappings are genuinely equivalent."""
        a = random_mapping(np.random.default_rng(seed_a))
        b = random_mapping(np.random.default_rng(seed_b))
        belief = BeliefMapping.from_mapping(a)
        assert belief.agrees_with(b) == a.equivalent_to(b)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_missing_function_disagrees(self, seed):
        """DRAMA's classic failure: one function short of the truth."""
        mapping = random_mapping(np.random.default_rng(seed))
        belief = BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=mapping.bank_functions[:-1],
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        assert not belief.agrees_with(mapping)
        assert not belief.hammer_equivalent(mapping)


class TestHammerEquivalent:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_column_errors_do_not_spoil_aiming(self, seed):
        """Aggressor placement only needs bank span + row bits, so a
        belief with garbled column bits is hammer-equivalent but does
        not fully agree."""
        mapping = random_mapping(np.random.default_rng(seed))
        belief = BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=mapping.bank_functions,
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits[:-1],
        )
        assert belief.hammer_equivalent(mapping)
        assert not belief.agrees_with(mapping)

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_row_errors_do_spoil_aiming(self, seed):
        mapping = random_mapping(np.random.default_rng(seed))
        shifted = tuple(position - 1 for position in mapping.row_bits)
        belief = BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=mapping.bank_functions,
            row_bits=shifted,
            column_bits=mapping.column_bits,
        )
        assert not belief.hammer_equivalent(mapping)
