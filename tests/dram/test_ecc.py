"""Tests for the SECDED ECC code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.ecc import EccOutcome, decode_word, encode_word, flips_outcome

data_words = st.integers(min_value=0, max_value=2**64 - 1)


class TestRoundtrip:
    @given(data_words)
    @settings(max_examples=60)
    def test_clean_roundtrip(self, data):
        word = encode_word(data)
        decoded, outcome = decode_word(word)
        assert outcome is EccOutcome.CLEAN
        assert decoded == data

    def test_encode_validation(self):
        with pytest.raises(ValueError):
            encode_word(1 << 64)


class TestSingleError:
    @given(data_words, st.integers(min_value=0, max_value=71))
    @settings(max_examples=80)
    def test_any_single_flip_corrected(self, data, position):
        word = encode_word(data).with_flips((position,))
        decoded, outcome = decode_word(word)
        assert outcome is EccOutcome.CORRECTED
        assert decoded == data

    def test_flip_position_validation(self):
        with pytest.raises(ValueError):
            encode_word(0).with_flips((72,))


class TestDoubleError:
    @given(
        data_words,
        st.integers(min_value=0, max_value=71),
        st.integers(min_value=0, max_value=71),
    )
    @settings(max_examples=80)
    def test_any_double_flip_detected(self, data, first, second):
        if first == second:
            return
        word = encode_word(data).with_flips((first, second))
        _, outcome = decode_word(word)
        assert outcome is EccOutcome.DETECTED


class TestTripleError:
    def test_triples_can_be_silent(self):
        """Three flips defeat SECDED at least sometimes — the reason
        rowhammer on ECC DIMMs is still dangerous."""
        rng = np.random.default_rng(0)
        outcomes = {flips_outcome(3, rng) for _ in range(300)}
        assert EccOutcome.SILENT in outcomes or EccOutcome.CORRECTED in outcomes
        # And never reported clean with intact data check failing silently
        assert EccOutcome.CLEAN not in outcomes


class TestFlipsOutcome:
    def test_zero_flips_clean(self):
        assert flips_outcome(0, np.random.default_rng(0)) is EccOutcome.CLEAN

    def test_one_flip_corrected(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert flips_outcome(1, rng) is EccOutcome.CORRECTED

    def test_two_flips_detected(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            assert flips_outcome(2, rng) is EccOutcome.DETECTED

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flips_outcome(-1, np.random.default_rng(0))
