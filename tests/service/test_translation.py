"""Tests for the caching phys↔DRAM translation service."""

import numpy as np
import pytest

from repro.dram.mapping import DramAddress
from repro.dram.presets import preset
from repro.dram.random_mapping import random_mapping
from repro.machine.sysinfo import SystemInfo
from repro.obs import tracing as obs
from repro.service.translation import (
    TranslationService,
    default_service,
    mapping_fingerprint,
    reset_default_service,
    system_fingerprint,
)


@pytest.fixture()
def service():
    return TranslationService()


class TestCachePlane:
    def test_register_compiles_once_then_hits(self, service):
        mapping = preset("No.1").mapping
        key = service.register(mapping)
        assert service.stats()["misses"] == 1
        assert service.register(mapping) == key
        assert service.stats() == {
            "cached_mappings": 1,
            "hits": 1,
            "misses": 1,
            "translations": 0,
            "encodes": 0,
            "persisted_recoveries": 0,
        }

    def test_mapping_fingerprint_is_content_based(self):
        from repro.dram.serialization import mapping_from_dict, mapping_to_dict

        mapping = preset("No.2").mapping
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert mapping is not rebuilt
        assert mapping_fingerprint(mapping) == mapping_fingerprint(rebuilt)

    def test_system_key_shares_cache_across_fleet(self, service):
        """Two lookalike machines (same SystemInfo) share one entry."""
        mapping = preset("No.1").mapping
        info = SystemInfo.from_geometry(mapping.geometry)
        first = service.register(mapping, system=info)
        second = service.register(mapping, system=info)
        assert first == second == system_fingerprint(info)
        assert len(service) == 1
        assert service.stats()["hits"] == 1

    def test_different_mappings_get_different_keys(self, service):
        rng = np.random.default_rng(5)
        keys = {service.register(random_mapping(rng)) for _ in range(5)}
        assert len(keys) == 5
        assert len(service) == 5

    def test_unknown_key_raises_helpful_keyerror(self, service):
        with pytest.raises(KeyError, match="register"):
            service.compiled("0" * 64)

    def test_default_service_is_a_singleton(self):
        reset_default_service()
        try:
            assert default_service() is default_service()
        finally:
            reset_default_service()


class TestQueryPlane:
    def test_translate_and_encode_roundtrip(self, service):
        mapping = preset("No.2").mapping
        key = service.register(mapping)
        pool = np.random.default_rng(0).integers(
            0, 1 << mapping.geometry.address_bits, 512, dtype=np.uint64
        )
        banks, rows, columns = service.translate(key, pool)
        assert np.array_equal(service.encode(key, banks, rows, columns), pool)
        stats = service.stats()
        assert stats["translations"] == 512
        assert stats["encodes"] == 512

    def test_scalar_queries(self, service):
        mapping = preset("No.1").mapping
        key = service.register(mapping)
        address = service.translate_one(key, 0x1234567)
        assert address == mapping.dram_address(0x1234567)
        assert service.encode_one(key, address) == 0x1234567
        assert service.stats()["translations"] == 1
        assert service.stats()["encodes"] == 1

    def test_generator_queries_count_as_encodes(self, service):
        key = service.register(preset("No.1").mapping)
        addrs = service.same_bank_addresses(key, bank=1, count=10)
        assert addrs.size == 10
        victims, above, below = service.adjacent_row_sets(key, bank=1, count=4)
        assert victims.size == above.size == below.size == 4
        assert service.stats()["encodes"] == 10 + 12

    def test_compiled_for_returns_cached_instance(self, service):
        mapping = preset("No.3").mapping
        first = service.compiled_for(mapping)
        second = service.compiled_for(mapping)
        assert first is second


class TestMetricsDeterminism:
    """Service accounting must be a deterministic function of the query
    stream, independent of how per-worker snapshots merge (jobs=1 vs N)."""

    @staticmethod
    def _query_stream(service, key, chunk):
        banks, rows, columns = service.translate(key, chunk)
        service.encode(key, banks, rows, columns)

    def test_obs_metrics_mirror_counters(self):
        mapping = preset("No.1").mapping
        tracer = obs.Tracer()
        with obs.activate(tracer):
            service = TranslationService()
            key = service.register(mapping)
            service.register(mapping)
            pool = np.arange(100, dtype=np.uint64)
            self._query_stream(service, key, pool)
        snapshot = tracer.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["translation.cache_misses"] == 1
        assert counters["translation.cache_hits"] == 1
        assert counters["translation.compiles"] == 1
        assert counters["translation.phys_to_dram"] == 100
        assert counters["translation.dram_to_phys"] == 100

    def test_merge_order_independence(self):
        """Per-worker snapshots merged in any order give equal totals —
        the property that makes jobs=1 and jobs=N traces agree."""
        mapping = preset("No.2").mapping
        chunks = [
            np.arange(start, start + 50, dtype=np.uint64) for start in range(0, 200, 50)
        ]

        def worker_snapshot(chunk):
            tracer = obs.Tracer()
            with obs.activate(tracer):
                service = TranslationService()
                key = service.register(mapping)
                self._query_stream(service, key, chunk)
            return tracer.metrics.snapshot()

        snapshots = [worker_snapshot(chunk) for chunk in chunks]

        def merged(order):
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            for index in order:
                registry.merge_snapshot(snapshots[index])
            return registry.snapshot()

        forward = merged(range(len(snapshots)))
        backward = merged(reversed(range(len(snapshots))))
        assert forward == backward
        assert forward["counters"]["translation.phys_to_dram"] == 200

        # And the serial (jobs=1) equivalent: one service consuming the
        # same stream produces the same query totals.
        tracer = obs.Tracer()
        with obs.activate(tracer):
            service = TranslationService()
            key = service.register(mapping)
            for chunk in chunks:
                self._query_stream(service, key, chunk)
        serial = tracer.metrics.snapshot()["counters"]
        assert serial["translation.phys_to_dram"] == 200
        assert serial["translation.dram_to_phys"] == 200
        # Compile totals differ (one per worker vs one serial) by design;
        # the query-stream totals are the deterministic contract.
        assert (
            forward["counters"]["translation.dram_to_phys"]
            == serial["translation.dram_to_phys"]
        )

    def test_publish_traces_only_layout_deterministic_counter(self):
        """publish() books hit/miss in stats() but mirrors only
        translation.registrations into obs — the hit/miss split depends
        on process-local cache history, so serial and multi-worker grid
        traces would disagree if it were mirrored."""
        mapping = preset("No.1").mapping
        tracer = obs.Tracer()
        with obs.activate(tracer):
            service = TranslationService()
            first = service.publish(mapping)
            second = service.publish(mapping)
        assert first == second
        assert service.stats()["misses"] == 1
        assert service.stats()["hits"] == 1
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["translation.registrations"] == 2
        for layout_dependent in (
            "translation.cache_hits",
            "translation.cache_misses",
            "translation.compiles",
        ):
            assert layout_dependent not in counters

    def test_untraced_service_still_counts(self):
        service = TranslationService()
        key = service.register(preset("No.1").mapping)
        service.translate(key, np.arange(10, dtype=np.uint64))
        assert service.stats()["translations"] == 10


class TestPipelineRegistration:
    def test_dramdig_registers_recovered_mapping(self):
        from repro.core.dramdig import DramDig
        from repro.machine.machine import SimulatedMachine

        reset_default_service()
        try:
            machine = SimulatedMachine.from_preset(preset("No.4"), seed=1)
            result = DramDig().run(machine)
            assert result.translation_key
            service = default_service()
            compiled = service.compiled(result.translation_key)
            assert compiled is result.compiled
            assert compiled is result.mapping.compiled
            # keyed by SystemInfo: a rerun of a lookalike machine hits
            before = service.stats()["hits"]
            machine2 = SimulatedMachine.from_preset(preset("No.4"), seed=2)
            result2 = DramDig().run(machine2)
            assert result2.translation_key == result.translation_key
            assert service.stats()["hits"] == before + 1
        finally:
            reset_default_service()


class TestPersistedRecovery:
    """Untrusted compiled payloads (knowledge-store records, files from
    other machines) must heal by recompiling, never by trusting."""

    def _mapping(self):
        return preset("No.1").mapping

    def test_good_payload_adopted_without_recovery(self, service):
        from repro.dram.serialization import compiled_to_dict

        mapping = self._mapping()
        payload = compiled_to_dict(mapping.compiled)
        key = service.register_serialized(mapping, payload)
        assert service.stats()["persisted_recoveries"] == 0
        assert service.compiled(key).dram_mtx == mapping.compiled.dram_mtx

    def test_garbage_payload_recompiles(self, service):
        mapping = self._mapping()
        key = service.register_serialized(mapping, {"format": "nonsense"})
        assert service.stats()["persisted_recoveries"] == 1
        assert service.compiled(key).dram_mtx == mapping.compiled.dram_mtx

    def test_none_payload_recompiles(self, service):
        mapping = self._mapping()
        service.register_serialized(mapping, None)
        assert service.stats()["persisted_recoveries"] == 1

    def test_other_mappings_compiled_form_rejected(self, service):
        from repro.dram.serialization import compiled_to_dict

        mine = self._mapping()
        other = preset("No.4").mapping
        imposter = compiled_to_dict(other.compiled)
        key = service.register_serialized(mine, imposter)
        assert service.stats()["persisted_recoveries"] == 1
        # The adopted compiled form is *mine*, not the imposter's.
        assert service.compiled(key).dram_mtx == mine.compiled.dram_mtx

    def test_cache_hit_skips_revalidation(self, service):
        mapping = self._mapping()
        service.register_serialized(mapping, {"format": "nonsense"})
        service.register_serialized(mapping, {"format": "still nonsense"})
        assert service.stats()["persisted_recoveries"] == 1
        assert service.stats()["hits"] == 1

    def test_persisted_file_roundtrip(self, service, tmp_path):
        import json as jsonlib

        from repro.dram.serialization import compiled_to_dict

        mapping = self._mapping()
        path = tmp_path / "compiled.json"
        path.write_text(jsonlib.dumps(compiled_to_dict(mapping.compiled)))
        key = service.register_persisted(mapping, path)
        assert service.stats()["persisted_recoveries"] == 0
        assert service.compiled(key).dram_mtx == mapping.compiled.dram_mtx

    def test_missing_file_recompiles(self, service, tmp_path):
        mapping = self._mapping()
        key = service.register_persisted(mapping, tmp_path / "nope.json")
        assert service.stats()["persisted_recoveries"] == 1
        assert service.compiled(key).dram_mtx == mapping.compiled.dram_mtx

    def test_garbled_file_recompiles(self, service, tmp_path):
        mapping = self._mapping()
        path = tmp_path / "compiled.json"
        path.write_text('{"half a json')
        service.register_persisted(mapping, path)
        assert service.stats()["persisted_recoveries"] == 1

    def test_stats_exposes_the_counter(self, service):
        assert "persisted_recoveries" in service.stats()
