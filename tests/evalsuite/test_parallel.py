"""Tests for the parallel evaluation grid (repro.parallel).

The load-bearing property is **bit-identity**: running any evaluation
grid with ``jobs > 1`` must produce exactly the bytes the serial run
produces. The cross-process regression here renders Table I both ways
(spawn workers, fixed seeds) and compares the rendered strings.
"""

import logging
import os

import numpy as np
import pytest

from repro.evalsuite.figure2 import run_figure2
from repro.evalsuite.table1 import render_table1, run_table1
from repro.parallel import (
    CellExecutionError,
    GridCell,
    execute_cell,
    fingerprint_cell,
    resolve_jobs,
    run_cells,
)


class TestGridCell:
    def test_valid_task(self):
        cell = GridCell("repro.analysis.bits:parity", {"value": 6})
        assert cell.task == "repro.analysis.bits:parity"

    def test_missing_function_rejected(self):
        with pytest.raises(ValueError):
            GridCell("repro.analysis.bits")

    def test_module_outside_package_rejected(self):
        with pytest.raises(ValueError):
            GridCell("os:system", {"command": "true"})

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            GridCell("")

    def test_unpicklable_payload_names_the_offending_key(self):
        with pytest.raises(ValueError, match="payload key 'fn'"):
            GridCell(
                "repro.analysis.bits:parity",
                {"value": 6, "fn": lambda: None},
            )


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_is_serial(self):
        assert resolve_jobs(0) == 1

    def test_positive_passthrough_within_capacity(self):
        assert resolve_jobs(2) == 2

    def test_oversubscription_clamped_to_capacity(self, caplog):
        # Requests beyond the host's CPUs are clamped (floor 2, so a
        # multi-job request still gets a pool on a single-CPU host) and
        # the clamp is logged.
        limit = max(2, os.cpu_count() or 1)
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            assert resolve_jobs(limit + 5) == limit
        assert any("clamping --jobs" in record.message for record in caplog.records)

    def test_within_capacity_not_logged(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            resolve_jobs(2)
        assert not caplog.records

    def test_negative_means_all_cpus(self):
        # -1 asks for the host's capacity: on a single-CPU machine that
        # is serial (1), never an oversubscribed pool.
        assert resolve_jobs(-1) == max(os.cpu_count() or 1, 1)

    def test_other_negatives_rejected(self):
        for bad in (-2, -8):
            with pytest.raises(ValueError, match="jobs must be positive"):
                resolve_jobs(bad)


class TestExecuteCell:
    def test_runs_named_function_with_payload(self):
        assert execute_cell(GridCell("repro.analysis.bits:parity", {"value": 0b111})) == 1

    def test_unknown_function_raises(self):
        with pytest.raises(AttributeError):
            execute_cell(GridCell("repro.analysis.bits:no_such_function"))

    def _raising_cell(self, tmp_path):
        return GridCell(
            "repro.faults.gridfaults:flaky_cell",
            {"scratch": str(tmp_path), "key": "boom", "fail_times": 99},
        )

    def test_cell_error_names_task_and_fingerprint(self, tmp_path):
        cell = self._raising_cell(tmp_path)
        with pytest.raises(CellExecutionError) as excinfo:
            execute_cell(cell)
        message = str(excinfo.value)
        assert cell.task in message
        assert fingerprint_cell(cell)[:12] in message
        assert "GridFaultError" in message

    def test_cell_error_surfaces_through_pool(self, tmp_path):
        cell = self._raising_cell(tmp_path)
        cells = [
            GridCell("repro.analysis.bits:parity", {"value": 1}),
            cell,
        ]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=2)
        assert cell.task in str(excinfo.value)


class TestRunCells:
    def test_serial_preserves_order(self):
        cells = [
            GridCell("repro.analysis.bits:parity", {"value": value})
            for value in (0b0, 0b1, 0b11, 0b111)
        ]
        assert run_cells(cells) == [0, 1, 0, 1]

    def test_empty_input(self):
        assert run_cells([]) == []

    def test_parallel_preserves_order(self):
        cells = [
            GridCell("repro.analysis.bits:parity", {"value": value})
            for value in range(8)
        ]
        assert run_cells(cells, jobs=4) == [run_cells([cell])[0] for cell in cells]


class TestCrossProcessIdentity:
    """Satellite regression: parallel grids are byte-identical to serial."""

    PANEL = ("No.1", "No.2")

    def test_table1_jobs4_byte_identical_to_serial(self):
        serial = render_table1(
            run_table1(seed=1, machines=self.PANEL, determinism_runs=2, jobs=1)
        )
        parallel = render_table1(
            run_table1(seed=1, machines=self.PANEL, determinism_runs=2, jobs=4)
        )
        assert parallel == serial

    def test_figure2_jobs2_matches_serial_exactly(self):
        serial = run_figure2(seed=1, machines=("No.1",))
        parallel = run_figure2(seed=1, machines=("No.1",), jobs=2)
        assert len(serial) == len(parallel) == 1
        assert serial[0] == parallel[0]
        # float equality is intentional: the cells must be bit-identical,
        # not merely close
        assert np.float64(serial[0].dramdig_seconds) == np.float64(
            parallel[0].dramdig_seconds
        )
