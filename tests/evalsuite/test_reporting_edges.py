"""Edge cases of the shared text renderers."""

from repro.evalsuite.reporting import format_seconds, render_series, render_table


class TestRenderTable:
    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert text.splitlines()[0].startswith("a")
        assert len(text.splitlines()) == 2  # header + rule only

    def test_non_string_cells(self):
        text = render_table(["n", "f"], [[1, 2.5], [None, True]])
        assert "None" in text and "2.5" in text

    def test_column_width_follows_longest(self):
        text = render_table(["x"], [["short"], ["a-much-longer-cell"]])
        header, rule, *rows = text.splitlines()
        assert len(rule) == len("a-much-longer-cell")


class TestRenderSeries:
    def test_zero_values_no_bar(self):
        text = render_series("s", [("a", 0.0), ("b", 10.0)])
        a_line = next(line for line in text.splitlines() if " a " in f" {line} ")
        assert "#" not in a_line

    def test_all_zero_does_not_divide_by_zero(self):
        text = render_series("s", [("a", 0.0)])
        assert "a" in text

    def test_unit_override(self):
        text = render_series("s", [("a", 3.0)], unit="x")
        assert "3.0x" in text


class TestFormatSeconds:
    def test_boundaries(self):
        assert format_seconds(0) == "0 s"
        assert format_seconds(119) == "119 s"
        assert format_seconds(120) == "2.0 min"
        assert format_seconds(7199) == "120.0 min"
        assert format_seconds(7200) == "2.0 h"
        assert format_seconds(10_800) == "3.0 h"
