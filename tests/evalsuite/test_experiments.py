"""Tests for the evaluation harness (paper tables/figures).

These use reduced panels/configs to stay fast; the full-scale runs live in
``benchmarks/``.
"""

import pytest

from repro.baselines.drama import DramaConfig
from repro.core.dramdig import DramDigConfig
from repro.core.probe import ProbeConfig
from repro.evalsuite.figure2 import render_figure2, run_figure2
from repro.evalsuite.reporting import format_seconds, render_series, render_table
from repro.evalsuite.table1 import render_table1, run_table1
from repro.evalsuite.table2 import render_table2, run_table2
from repro.evalsuite.table3 import render_table3, run_table3
from repro.rowhammer.hammer import HammerConfig

FAST_DRAMDIG = DramDigConfig(probe=ProbeConfig(rounds=200))
FAST_DRAMA = DramaConfig(pool_size=2500, rounds=400, timeout_seconds=600.0)
FAST_HAMMER = HammerConfig(duration_seconds=20.0)


class TestReporting:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_render_series(self):
        text = render_series("times", [("m1", 10.0), ("m2", 20.0)])
        assert "m1" in text and "#" in text

    def test_render_series_empty(self):
        assert "empty" in render_series("x", [])

    def test_format_seconds(self):
        assert format_seconds(69) == "69 s"
        assert format_seconds(468) == "7.8 min"
        assert format_seconds(7200) == "2.0 h"


class TestTable2:
    def test_small_panel(self):
        rows = run_table2(seed=1, machines=("No.1", "No.4"), config=FAST_DRAMDIG)
        assert len(rows) == 2
        assert all(row.matches_ground_truth for row in rows)

    def test_render_contains_paper_values(self):
        rows = run_table2(seed=1, machines=("No.1",), config=FAST_DRAMDIG)
        text = render_table2(rows)
        assert "(14, 17)" in text
        assert "17~32" in text
        assert "0~5, 7~13" in text
        assert "Sandy Bridge" in text


class TestFigure2:
    def test_dramdig_beats_drama(self):
        points = run_figure2(
            seed=1,
            machines=("No.1",),
            dramdig_config=FAST_DRAMDIG,
            drama_config=FAST_DRAMA,
        )
        point = points[0]
        assert not point.drama_timed_out
        assert point.dramdig_seconds < point.drama_seconds

    def test_noisy_machine_timeout(self):
        points = run_figure2(
            seed=1,
            machines=("No.7",),
            dramdig_config=FAST_DRAMDIG,
            drama_config=FAST_DRAMA,
        )
        assert points[0].drama_timed_out

    def test_render(self):
        points = run_figure2(
            seed=1,
            machines=("No.4",),
            dramdig_config=FAST_DRAMDIG,
            drama_config=FAST_DRAMA,
        )
        text = render_figure2(points)
        assert "DRAMDig average" in text


class TestTable3:
    def test_dramdig_wins_no2(self):
        rows = run_table3(
            seed=1,
            tests=2,
            machines=("No.2",),
            hammer_config=FAST_HAMMER,
            dramdig_config=FAST_DRAMDIG,
            drama_config=FAST_DRAMA,
        )
        row = rows[0]
        assert len(row.dramdig_flips) == 2
        assert row.dramdig_total > 0
        assert row.dramdig_total >= row.drama_total

    def test_render(self):
        rows = run_table3(
            seed=1,
            tests=1,
            machines=("No.1",),
            hammer_config=FAST_HAMMER,
            dramdig_config=FAST_DRAMDIG,
            drama_config=FAST_DRAMA,
        )
        text = render_table3(rows)
        assert "T1" in text and "Total" in text and "/" in text


class TestTable1:
    def test_small_panel_verdicts(self):
        verdicts = run_table1(
            seed=1,
            machines=("No.1", "No.2"),
            determinism_runs=2,
            drama_config=FAST_DRAMA,
        )
        by_tool = {verdict.tool: verdict for verdict in verdicts}
        assert by_tool["DRAMDig"].generic
        assert by_tool["DRAMDig"].deterministic
        assert not by_tool["Xiao et al."].generic  # stuck on No.2
        assert not by_tool["Seaborn et al."].generic

    def test_render(self):
        verdicts = run_table1(
            seed=1, machines=("No.1",), determinism_runs=1, drama_config=FAST_DRAMA
        )
        text = render_table1(verdicts)
        assert "DRAMDig" in text and "Generic" in text
