"""Kill-and-resume determinism: interrupted grid runs resume byte-identically.

The contract behind ``--resume``: a run that dies partway (simulated
here by truncating the checkpoint journal to a prefix, the on-disk state
an interrupt leaves behind) and is restarted over its journal must

* re-execute only the missing cells, and
* render artefacts byte-identical to an uninterrupted run.

Truncation rather than an actual mid-flight SIGKILL keeps the test
deterministic; the CI smoke job (``scripts/kill_resume_smoke.py``) does
the real-kill variant.
"""

import repro.parallel.supervisor as supervisor
from repro.evalsuite.figure2 import render_figure2, run_figure2
from repro.evalsuite.table1 import render_table1, run_table1
from repro.parallel import CellFailure, GridPolicy

PANEL = ("No.1", "No.4")


def _truncate_journal(path, keep: int) -> None:
    """Rewrite the journal with only its first ``keep`` records."""
    lines = path.read_text().splitlines()
    header, records = lines[0], lines[1:]
    assert len(records) > keep, "test needs a journal longer than the prefix"
    path.write_text("\n".join([header] + records[:keep]) + "\n")


def _counting_execute_cell(counter):
    real = supervisor.execute_cell

    def wrapped(cell):
        counter.append(cell.task)
        return real(cell)

    return wrapped


class TestKillAndResume:
    def test_table1_resume_is_byte_identical_and_minimal(self, tmp_path, monkeypatch):
        cold = render_table1(run_table1(seed=1, machines=PANEL, determinism_runs=2))

        journal_path = tmp_path / "journal.jsonl"
        supervised = render_table1(
            run_table1(
                seed=1, machines=PANEL, determinism_runs=2, journal=journal_path
            )
        )
        assert supervised == cold

        total = len(journal_path.read_text().splitlines()) - 1  # minus header
        keep = 2
        _truncate_journal(journal_path, keep)

        executed = []
        monkeypatch.setattr(
            supervisor, "execute_cell", _counting_execute_cell(executed)
        )
        resumed = render_table1(
            run_table1(
                seed=1, machines=PANEL, determinism_runs=2, journal=journal_path
            )
        )
        assert resumed == cold
        assert len(executed) == total - keep

    def test_figure2_resume_is_byte_identical(self, tmp_path):
        cold = render_figure2(run_figure2(seed=1, machines=PANEL))
        journal_path = tmp_path / "journal.jsonl"
        first = render_figure2(
            run_figure2(seed=1, machines=PANEL, journal=journal_path)
        )
        assert first == cold
        _truncate_journal(journal_path, 1)
        resumed = render_figure2(
            run_figure2(seed=1, machines=PANEL, journal=journal_path)
        )
        assert resumed == cold

    def test_full_journal_resume_executes_nothing(self, tmp_path, monkeypatch):
        journal_path = tmp_path / "journal.jsonl"
        run_table1(seed=1, machines=PANEL, determinism_runs=2, journal=journal_path)

        executed = []
        monkeypatch.setattr(
            supervisor, "execute_cell", _counting_execute_cell(executed)
        )
        run_table1(seed=1, machines=PANEL, determinism_runs=2, journal=journal_path)
        assert executed == []

    def test_journal_keys_by_content_not_position(self, tmp_path):
        """Changing the seed invalidates every checkpoint (fingerprints
        cover the payload), so a stale journal cannot poison a new run."""
        journal_path = tmp_path / "journal.jsonl"
        run_table1(seed=1, machines=PANEL, determinism_runs=2, journal=journal_path)
        cold = render_table1(run_table1(seed=2, machines=PANEL, determinism_runs=2))
        crossed = render_table1(
            run_table1(
                seed=2, machines=PANEL, determinism_runs=2, journal=journal_path
            )
        )
        assert crossed == cold


class TestPartialRendering:
    def test_table1_renders_failed_cells(self, monkeypatch):
        real = supervisor.execute_cell

        def sabotage(cell):
            if (
                cell.task == "repro.evalsuite.table1:dramdig_machine_cell"
                and cell.payload.get("name") == "No.4"
            ):
                raise RuntimeError("injected cell failure")
            return real(cell)

        monkeypatch.setattr(supervisor, "execute_cell", sabotage)
        verdicts = run_table1(
            seed=1,
            machines=PANEL,
            determinism_runs=2,
            supervision=GridPolicy(),
        )
        dramdig = next(v for v in verdicts if v.tool == "DRAMDig")
        assert dramdig.grid_failed == ("No.4",)
        assert dramdig.details["No.4"] == "FAILED(error)"
        assert not dramdig.generic
        rendered = render_table1(verdicts)
        assert "grid FAILED: No.4" in rendered

    def test_figure2_renders_failure_rows_and_manifest(self):
        points = run_figure2(seed=1, machines=("No.1",))
        from repro.parallel import GridCell, fingerprint_cell

        cell = GridCell(
            "repro.evalsuite.figure2:figure2_machine_cell",
            {"name": "No.4", "seed": 1},
        )
        failure = CellFailure(
            index=1,
            cell=cell,
            fingerprint=fingerprint_cell(cell),
            reason="worker-death",
            detail="worker process died mid-cell",
            attempts=1,
        )
        rendered = render_figure2(points + [failure])
        assert "FAILED(worker-death)" in rendered
        assert "grid failures (1 cell(s) unrecovered):" in rendered
        assert "No.4" in rendered
        # averages still computed over the completed machine
        assert "DRAMDig average" in rendered

    def test_figure2_all_failed_renders_without_crashing(self):
        from repro.parallel import GridCell

        cell = GridCell(
            "repro.evalsuite.figure2:figure2_machine_cell",
            {"name": "No.1", "seed": 1},
        )
        failure = CellFailure(
            index=0, cell=cell, fingerprint="f" * 64, reason="timeout"
        )
        rendered = render_figure2([failure])
        assert "FAILED(timeout)" in rendered
        assert "DRAMDig average" not in rendered


class TestTable3Partial:
    def test_render_table3_failure_row(self):
        from repro.evalsuite.table3 import Table3Row, render_table3
        from repro.parallel import GridCell

        good = Table3Row(
            machine="No.1", dramdig_flips=[5, 6], drama_flips=[1, 2]
        )
        cell = GridCell(
            "repro.evalsuite.table3:table3_machine_cell",
            {"name": "No.2", "seed": 1},
        )
        failure = CellFailure(
            index=1, cell=cell, fingerprint="a" * 64, reason="run-deadline"
        )
        rendered = render_table3([good, failure])
        assert "FAILED(run-deadline)" in rendered
        assert "No.2" in rendered
        assert "grid failures (1 cell(s) unrecovered):" in rendered
