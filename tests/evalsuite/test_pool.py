"""Cross-process regressions for pool reuse and cell batching.

The promise under test: ``--pool-mode`` and ``--batch-cells`` change how
grid work is *shipped* — pool lifetimes, tasks per submission — and
never the bytes of any artefact, journal entry or merged trace. Every
test here compares a persistent/fresh/batched run against the serial
run of the same cells.
"""

from repro.evalsuite.gridrun import execute_grid
from repro.evalsuite.table1 import render_table1, run_table1
from repro.faults.gridfaults import invocations
from repro.obs import tracing as obs
from repro.parallel import (
    GridCell,
    GridPolicy,
    get_pool_manager,
    run_cells,
    run_cells_supervised,
)


def _parity_cells(values):
    return [
        GridCell("repro.analysis.bits:parity", {"value": value}) for value in values
    ]


def _counting_cell(tmp_path, key, value):
    return GridCell(
        "repro.faults.gridfaults:counting_cell",
        {"scratch": str(tmp_path), "key": key, "value": value},
    )


class TestPoolModeIdentity:
    def test_persistent_and_fresh_match_serial(self):
        cells = _parity_cells(range(8))
        serial = run_cells(cells)
        assert run_cells(cells, jobs=2, pool_mode="persistent") == serial
        assert run_cells(cells, jobs=2, pool_mode="fresh") == serial

    def test_persistent_pool_is_reused_across_dispatches(self):
        cells = _parity_cells(range(4))
        run_cells(cells, jobs=2, pool_mode="persistent")
        manager = get_pool_manager()
        parked = dict(manager._parked)
        assert parked, "a persistent dispatch must park its pool"
        run_cells(cells, jobs=2, pool_mode="persistent")
        # the second dispatch reused the parked pool instead of building
        # (and parking) another one
        assert dict(manager._parked) == parked

    def test_fresh_mode_does_not_touch_the_parked_registry(self):
        manager = get_pool_manager()
        before = dict(manager._parked)
        run_cells(_parity_cells(range(4)), jobs=2, pool_mode="fresh")
        assert dict(manager._parked) == before


class TestBatchedDispatchIdentity:
    def test_batched_matches_serial_for_every_chunking(self):
        cells = _parity_cells(range(10))
        serial = run_cells(cells)
        for batch in (2, 3, 10, 32):
            assert run_cells(cells, jobs=2, batch_cells=batch) == serial

    def test_table1_batched_byte_identical_to_serial(self):
        serial = render_table1(
            run_table1(seed=1, machines=("No.1", "No.2"), determinism_runs=2)
        )
        batched = render_table1(
            run_table1(
                seed=1, machines=("No.1", "No.2"), determinism_runs=2,
                jobs=2, batch_cells=3,
            )
        )
        assert batched == serial

    def test_traced_batched_grid_merges_the_same_cell_spans(self):
        cells = _parity_cells(range(6))
        serial_tracer = obs.Tracer()
        with obs.activate(serial_tracer):
            serial = execute_grid(cells)
        batched_tracer = obs.Tracer()
        with obs.activate(batched_tracer):
            batched = execute_grid(cells, jobs=2, batch_cells=3)
        assert batched == serial

        def cell_spans(tracer):
            return sorted(
                span.path for span in tracer.spans if span.name.startswith("cell:")
            )

        assert cell_spans(batched_tracer) == cell_spans(serial_tracer)


class TestSupervisedBatching:
    def test_batched_supervised_matches_serial(self):
        cells = _parity_cells(range(9))
        outcome = run_cells_supervised(cells, jobs=2, batch_cells=3)
        assert outcome.complete
        assert outcome.results == run_cells(cells)

    def test_error_inside_a_batch_fails_alone(self, tmp_path):
        cells = (
            _parity_cells([1, 2])
            + [
                GridCell(
                    "repro.faults.gridfaults:flaky_cell",
                    {"scratch": str(tmp_path), "key": "bad", "fail_times": 99},
                )
            ]
            + _parity_cells([4, 7])
        )
        outcome = run_cells_supervised(cells, jobs=2, batch_cells=3)
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "error"
        survivors = [r for i, r in enumerate(outcome.results) if i != 2]
        assert survivors == run_cells(_parity_cells([1, 2, 4, 7]))

    def test_mid_batch_worker_death_spares_batchmates(self):
        """A poison cell inside a batch fails alone; batchmates complete.

        The crash cannot be attributed within the batch, so every member
        is quarantined and re-run solo: the poison cell crashes alone
        (definitive, charged), the innocents win their solo runs with
        their first-attempt budget intact.
        """
        cells = (
            _parity_cells([1, 2])
            + [GridCell("repro.faults.gridfaults:poison_cell", {})]
            + _parity_cells([4, 7])
        )
        outcome = run_cells_supervised(cells, jobs=2, batch_cells=3)
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "worker-death"
        survivors = [r for i, r in enumerate(outcome.results) if i != 2]
        assert survivors == run_cells(_parity_cells([1, 2, 4, 7]))

    def test_resume_after_mid_batch_kill_is_byte_identical(self, tmp_path):
        """Journalled batchmates of a killed batch are not re-executed.

        First run: a poison cell mid-batch kills its worker; the
        batchmates settle through quarantine and are journalled. The
        resumed run must skip every journalled cell and produce exactly
        the first run's results.
        """
        cells = (
            [_counting_cell(tmp_path, "c0", 10), _counting_cell(tmp_path, "c1", 11)]
            + [GridCell("repro.faults.gridfaults:poison_cell", {})]
            + [_counting_cell(tmp_path, "c3", 13), _counting_cell(tmp_path, "c4", 14)]
        )
        journal_path = tmp_path / "journal.jsonl"
        first = run_cells_supervised(
            cells, jobs=2, batch_cells=3, journal=journal_path
        )
        assert [f.index for f in first.failures] == [2]
        counts_after_first = {
            key: invocations(str(tmp_path), key) for key in ("c0", "c1", "c3", "c4")
        }

        second = run_cells_supervised(
            cells, jobs=2, batch_cells=3, journal=journal_path
        )
        assert second.resumed == 4
        assert [f.index for f in second.failures] == [2]
        assert second.results[:2] == first.results[:2]
        assert second.results[3:] == first.results[3:]
        # zero re-executions of the journalled cells
        for key, count in counts_after_first.items():
            assert invocations(str(tmp_path), key) == count

    def test_batched_journal_matches_serial_journal(self, tmp_path):
        """Same cells, same fingerprints, same journalled values."""
        from repro.parallel import CheckpointJournal

        cells = _parity_cells(range(6))
        serial_path = tmp_path / "serial.jsonl"
        batched_path = tmp_path / "batched.jsonl"
        run_cells_supervised(cells, journal=serial_path)
        run_cells_supervised(cells, jobs=2, batch_cells=4, journal=batched_path)
        serial_journal = CheckpointJournal(serial_path)
        batched_journal = CheckpointJournal(batched_path)
        from repro.parallel import fingerprint_cell

        for cell in cells:
            fingerprint = fingerprint_cell(cell)
            serial_hit, serial_value = serial_journal.lookup(fingerprint)
            batched_hit, batched_value = batched_journal.lookup(fingerprint)
            assert serial_hit and batched_hit
            assert serial_value == batched_value

    def test_batch_timeout_quarantines_and_completes_innocents(self):
        """A hung batch cannot name its hung member: refund, solo re-runs.

        The batch holding the hang times out at K cell-budgets, its
        members are quarantined, and the solo re-runs charge only the
        true hang while the batchmates complete.
        """
        cells = _parity_cells([1, 2]) + [
            GridCell("repro.faults.gridfaults:hang_cell", {"seconds": 3600.0})
        ]
        policy = GridPolicy(cell_timeout_s=1.0)
        outcome = run_cells_supervised(
            cells, jobs=2, batch_cells=3, policy=policy
        )
        assert [f.index for f in outcome.failures] == [2]
        assert outcome.failures[0].reason == "timeout"
        assert outcome.results[:2] == run_cells(_parity_cells([1, 2]))
        assert any(e.action == "timeout" for e in outcome.events)
