"""Unit tests for the determinism study module."""

from repro.baselines.drama import DramaConfig
from repro.core.dramdig import DramDigConfig
from repro.core.probe import ProbeConfig
from repro.evalsuite.determinism import render_determinism, run_determinism

FAST_DRAMDIG = DramDigConfig(probe=ProbeConfig(rounds=200))
FAST_DRAMA = DramaConfig(pool_size=2500, rounds=400, timeout_seconds=600.0)


def test_dramdig_single_output():
    rows = run_determinism(
        machine_name="No.4",
        runs=3,
        seed=1,
        dramdig_config=FAST_DRAMDIG,
        drama_config=FAST_DRAMA,
    )
    by_tool = {row.tool: row for row in rows}
    dramdig = by_tool["DRAMDig"]
    assert dramdig.completed == 3
    assert dramdig.distinct_outputs == 1
    assert dramdig.modal_fraction == 1.0
    assert dramdig.correct_fraction == 1.0


def test_drama_row_accounts_for_every_run():
    rows = run_determinism(
        machine_name="No.4",
        runs=3,
        seed=1,
        dramdig_config=FAST_DRAMDIG,
        drama_config=FAST_DRAMA,
    )
    drama = next(row for row in rows if row.tool == "DRAMA")
    assert drama.runs == 3
    assert drama.completed <= 3
    assert sum(drama.outputs.values()) == drama.completed


def test_render():
    rows = run_determinism(
        machine_name="No.4",
        runs=2,
        seed=1,
        dramdig_config=FAST_DRAMDIG,
        drama_config=FAST_DRAMA,
    )
    text = render_determinism(rows)
    assert "DRAMDig" in text and "Modal output" in text


class TestReport:
    def test_small_scale_report(self, tmp_path):
        from repro.evalsuite.report import ReportConfig, generate_report
        from repro.rowhammer.hammer import HammerConfig

        config = ReportConfig(
            seed=1,
            machines=("No.1",),
            hammer_machines=("No.1",),
            hammer_tests=1,
            determinism_runs=2,
            determinism_machine="No.4",
            dramdig=FAST_DRAMDIG,
            drama=FAST_DRAMA,
            hammer=HammerConfig(duration_seconds=20.0),
        )
        target = tmp_path / "report.md"
        report = generate_report(config, path=target)
        assert target.exists()
        assert "## Table II — uncovered mappings" in report
        assert "## Determinism study" in report
        assert "Sandy Bridge" in report
