"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "No.1: Sandy Bridge i5-2400" in out
    assert out.count("No.") >= 9


def test_run_machine(capsys):
    assert main(["run", "No.4"]) == 0
    out = capsys.readouterr().out
    assert "matches ground truth: yes" in out
    assert "(13, 16)" in out


def test_run_rejects_unknown_machine(capsys):
    with pytest.raises(SystemExit):
        main(["run", "No.42"])


def test_compare(capsys):
    assert main(["--seed", "2", "compare", "No.4"]) == 0
    out = capsys.readouterr().out
    assert "== DRAMDig on No.4 ==" in out
    assert "== DRAMA on No.4 ==" in out
    assert "== Xiao et al. on No.4 ==" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_explain(capsys):
    assert main(["explain", "No.2"]) == 0
    out = capsys.readouterr().out
    assert "shared bits" in out
    assert "bank4 = XOR of bits (7, 8, 9, 12, 13, 18, 19)" in out


def test_hammer(capsys):
    assert main(["hammer", "No.4", "--tests", "1", "--minutes", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "mapping recovered" in out
    assert "1 tests" in out


def test_run_save(tmp_path, capsys):
    from repro.dram.serialization import load_mapping
    from repro.dram.presets import preset

    target = tmp_path / "mapping.json"
    assert main(["run", "No.4", "--save", str(target)]) == 0
    assert "mapping saved" in capsys.readouterr().out
    assert load_mapping(target).equivalent_to(preset("No.4").mapping)


def test_jobs_rejects_zero_and_negative(capsys):
    for bad in ("0", "-8"):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", bad])
    err = capsys.readouterr().err
    assert "--jobs must be a positive integer or -1" in err


def test_jobs_rejects_non_integer(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--jobs", "many"])
    assert "--jobs" in capsys.readouterr().err


def test_max_retries_rejects_negative(capsys):
    with pytest.raises(SystemExit):
        main(["run", "No.4", "--max-retries", "-1"])
    assert "--max-retries must be non-negative" in capsys.readouterr().err


def test_run_rejects_unknown_noise_profile(capsys):
    with pytest.raises(SystemExit):
        main(["run", "No.4", "--noise-profile", "imaginary"])


def test_run_with_noise_profile_recovers(capsys):
    assert main(["run", "No.1", "--noise-profile", "drift"]) == 0
    out = capsys.readouterr().out
    assert "noise profile: drift (adaptive recovery enabled)" in out
    assert "matches ground truth: yes" in out
