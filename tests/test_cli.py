"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "No.1: Sandy Bridge i5-2400" in out
    assert out.count("No.") >= 9


def test_run_machine(capsys):
    assert main(["run", "No.4"]) == 0
    out = capsys.readouterr().out
    assert "matches ground truth: yes" in out
    assert "(13, 16)" in out


def test_run_rejects_unknown_machine(capsys):
    with pytest.raises(SystemExit):
        main(["run", "No.42"])


def test_compare(capsys):
    assert main(["--seed", "2", "compare", "No.4"]) == 0
    out = capsys.readouterr().out
    assert "== DRAMDig on No.4 ==" in out
    assert "== DRAMA on No.4 ==" in out
    assert "== Xiao et al. on No.4 ==" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_explain(capsys):
    assert main(["explain", "No.2"]) == 0
    out = capsys.readouterr().out
    assert "shared bits" in out
    assert "bank4 = XOR of bits (7, 8, 9, 12, 13, 18, 19)" in out


def test_hammer(capsys):
    assert main(["hammer", "No.4", "--tests", "1", "--minutes", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "mapping recovered" in out
    assert "1 tests" in out


def test_run_save(tmp_path, capsys):
    from repro.dram.serialization import load_mapping
    from repro.dram.presets import preset

    target = tmp_path / "mapping.json"
    assert main(["run", "No.4", "--save", str(target)]) == 0
    assert "mapping saved" in capsys.readouterr().out
    assert load_mapping(target).equivalent_to(preset("No.4").mapping)


def test_jobs_rejects_zero_and_negative(capsys):
    for bad in ("0", "-8"):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", bad])
    err = capsys.readouterr().err
    assert "--jobs must be a positive integer or -1" in err


def test_jobs_rejects_non_integer(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--jobs", "many"])
    assert "--jobs" in capsys.readouterr().err


def test_max_retries_rejects_negative(capsys):
    with pytest.raises(SystemExit):
        main(["run", "No.4", "--max-retries", "-1"])
    assert "--max-retries must be non-negative" in capsys.readouterr().err


def test_cell_timeout_rejects_non_positive(capsys):
    for bad in ("0", "-3", "abc"):
        with pytest.raises(SystemExit):
            main(["table1", "--cell-timeout", bad])
    assert "--cell-timeout" in capsys.readouterr().err


def test_run_deadline_rejects_non_positive(capsys):
    with pytest.raises(SystemExit):
        main(["figure2", "--run-deadline", "0"])
    assert "positive number of seconds" in capsys.readouterr().err


def test_grid_retries_rejects_negative(capsys):
    with pytest.raises(SystemExit):
        main(["table3", "--grid-retries", "-1"])
    assert "--grid-retries must be non-negative" in capsys.readouterr().err


def test_grid_flags_build_supervision(monkeypatch, capsys):
    """The crash-safety flags reach run_table1 as a GridPolicy + journal."""
    import repro.cli as cli
    from repro.evalsuite.table1 import ToolVerdict

    seen = {}

    def fake_run_table1(
        seed, jobs, supervision, journal, batch_cells=None, pool_mode="persistent"
    ):
        seen.update(
            seed=seed, jobs=jobs, supervision=supervision, journal=journal
        )
        return [
            ToolVerdict(
                tool="DRAMDig", generic=True, efficient=True,
                deterministic=True, successes=1, panel_size=1,
                median_seconds=1.0,
            )
        ]

    monkeypatch.setattr(cli, "run_table1", fake_run_table1)
    assert main(
        ["table1", "--resume", "j.jsonl", "--cell-timeout", "30",
         "--grid-retries", "2"]
    ) == 0
    assert seen["journal"] == "j.jsonl"
    assert seen["supervision"].cell_timeout_s == 30.0
    assert seen["supervision"].retries == 2
    assert seen["supervision"].run_deadline_s is None


def test_batch_cells_rejects_non_positive(capsys):
    for bad in ("0", "-2", "abc"):
        with pytest.raises(SystemExit):
            main(["table1", "--batch-cells", bad])
    assert "--batch-cells" in capsys.readouterr().err


def test_pool_mode_rejects_unknown_choice(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--pool-mode", "warm"])
    assert "--pool-mode" in capsys.readouterr().err


def test_batching_flags_reach_the_runner(monkeypatch, capsys):
    import repro.cli as cli
    from repro.evalsuite.table1 import ToolVerdict

    seen = {}

    def fake_run_table1(
        seed, jobs, supervision, journal, batch_cells=None, pool_mode="persistent"
    ):
        seen.update(batch_cells=batch_cells, pool_mode=pool_mode)
        return [
            ToolVerdict(
                tool="DRAMDig", generic=True, efficient=True,
                deterministic=True, successes=1, panel_size=1,
                median_seconds=1.0,
            )
        ]

    monkeypatch.setattr(cli, "run_table1", fake_run_table1)
    assert main(["table1", "--batch-cells", "3", "--pool-mode", "fresh"]) == 0
    assert seen["batch_cells"] == 3
    assert seen["pool_mode"] == "fresh"
    assert main(["table1"]) == 0
    assert seen["batch_cells"] is None
    assert seen["pool_mode"] == "persistent"


def test_resume_alone_enables_supervision(monkeypatch, capsys):
    import repro.cli as cli
    from repro.evalsuite.table1 import ToolVerdict

    seen = {}

    def fake_run_table1(
        seed, jobs, supervision, journal, batch_cells=None, pool_mode="persistent"
    ):
        seen.update(supervision=supervision, journal=journal)
        return [
            ToolVerdict(
                tool="DRAMDig", generic=True, efficient=True,
                deterministic=True, successes=1, panel_size=1,
                median_seconds=1.0,
            )
        ]

    monkeypatch.setattr(cli, "run_table1", fake_run_table1)
    assert main(["table1", "--resume", "j.jsonl"]) == 0
    assert seen["journal"] == "j.jsonl"
    assert seen["supervision"] is not None


def test_default_grid_flags_keep_fail_fast_path(monkeypatch, capsys):
    import repro.cli as cli
    from repro.evalsuite.table1 import ToolVerdict

    seen = {}

    def fake_run_table1(
        seed, jobs, supervision, journal, batch_cells=None, pool_mode="persistent"
    ):
        seen.update(supervision=supervision, journal=journal)
        return [
            ToolVerdict(
                tool="DRAMDig", generic=True, efficient=True,
                deterministic=True, successes=1, panel_size=1,
                median_seconds=1.0,
            )
        ]

    monkeypatch.setattr(cli, "run_table1", fake_run_table1)
    assert main(["table1"]) == 0
    assert seen["supervision"] is None
    assert seen["journal"] is None


def test_partial_table1_exits_nonzero(monkeypatch, capsys):
    import repro.cli as cli
    from repro.evalsuite.table1 import ToolVerdict

    def fake_run_table1(
        seed, jobs, supervision, journal, batch_cells=None, pool_mode="persistent"
    ):
        return [
            ToolVerdict(
                tool="DRAMDig", generic=False, efficient=True,
                deterministic=True, successes=0, panel_size=1,
                median_seconds=float("nan"),
                notes="grid FAILED: No.1",
                grid_failed=("No.1",),
            )
        ]

    monkeypatch.setattr(cli, "run_table1", fake_run_table1)
    assert main(["table1", "--grid-retries", "1"]) == 1
    assert "grid FAILED: No.1" in capsys.readouterr().out


def test_run_rejects_unknown_noise_profile(capsys):
    with pytest.raises(SystemExit):
        main(["run", "No.4", "--noise-profile", "imaginary"])


def test_run_with_noise_profile_recovers(capsys):
    assert main(["run", "No.1", "--noise-profile", "drift"]) == 0
    captured = capsys.readouterr()
    # status lines go to stderr (logging); artefact output stays on stdout
    assert "noise profile: drift (adaptive recovery enabled)" in captured.err
    assert "matches ground truth: yes" in captured.out


def test_status_lines_go_to_stderr(capsys):
    assert main(["run", "No.4"]) == 0
    captured = capsys.readouterr()
    assert "Reverse-engineering No.4" in captured.err
    assert "Reverse-engineering" not in captured.out


def test_quiet_suppresses_status_lines(capsys):
    assert main(["--quiet", "run", "No.4"]) == 0
    captured = capsys.readouterr()
    assert "Reverse-engineering" not in captured.err
    assert "matches ground truth: yes" in captured.out


def test_run_trace_roundtrips_through_summary(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(["run", "No.4", "--trace", str(trace_path)]) == 0
    captured = capsys.readouterr()
    assert f"trace written to {trace_path}" in captured.err
    assert trace_path.exists()

    from repro.obs.export import load_trace

    trace = load_trace(trace_path)
    assert trace.header["command"] == "run"
    assert any(span.name == "dramdig" for span in trace.spans)

    assert main(["trace", "summary", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "dramdig" in out
    assert "metrics:" in out
    assert "probe.pair_measurements" in out


def test_trace_summary_rejects_missing_and_garbage(tmp_path, capsys):
    assert main(["trace", "summary", str(tmp_path / "absent.jsonl")]) == 1
    assert "cannot read trace" in capsys.readouterr().err

    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text('{"format": "something-else", "version": 1}\n')
    assert main(["trace", "summary", str(garbage)]) == 1
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_summary_flags_inconsistent_trace(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        "\n".join(
            [
                json.dumps({"format": "dramdig-trace", "version": 1}),
                json.dumps(
                    {
                        "type": "span", "id": 1, "parent": None,
                        "name": "dramdig", "path": "dramdig",
                        "attrs": {"measurements": 10},
                    }
                ),
                json.dumps(
                    {
                        "type": "span", "id": 2, "parent": 1,
                        "name": "calibrate", "path": "dramdig/calibrate",
                        "attrs": {"measurements": 7},
                    }
                ),
            ]
        )
        + "\n"
    )
    assert main(["trace", "summary", str(bad)]) == 1
    assert "trace inconsistency" in capsys.readouterr().err


class TestTranslate:
    def test_phys_to_dram(self, capsys):
        assert main(["translate", "No.2", "--phys", "0x1ed2f00"]) == 0
        out = capsys.readouterr().out
        assert "32 banks" in out
        assert "0x000001ed2f00 -> bank 31 row 123 col 6016" in out

    def test_dram_to_phys_roundtrip(self, capsys):
        from repro.dram.presets import preset

        assert main(["translate", "No.2", "--dram", "3,17,5"]) == 0
        out = capsys.readouterr().out
        phys = int(out.splitlines()[-1].split("-> ")[1], 16)
        mapping = preset("No.2").mapping
        decoded = mapping.dram_address(phys)
        assert (decoded.bank, decoded.row, decoded.column) == (3, 17, 5)

    def test_generators_and_stats(self, capsys):
        assert main([
            "translate", "No.1", "--same-bank", "2", "--count", "3",
            "--aggressors", "1", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "bank 2, column 0:" in out
        assert out.count("victim 0x") == 3
        assert "service:" in out and "cached_mappings=" in out

    def test_saved_mapping_file(self, tmp_path, capsys):
        target = tmp_path / "mapping.json"
        assert main(["run", "No.4", "--save", str(target)]) == 0
        capsys.readouterr()
        assert main(["translate", "--mapping", str(target), "--phys", "12345"]) == 0
        assert "-> bank" in capsys.readouterr().out

    def test_requires_exactly_one_source(self, capsys):
        assert main(["translate"]) == 2
        assert main(["translate", "No.1", "--mapping", "x.json"]) == 2

    def test_bad_inputs(self, capsys, tmp_path):
        assert main(["translate", "No.1", "--phys", "zzz"]) == 2
        assert main(["translate", "No.1", "--dram", "1,2"]) == 2
        assert main(["translate", "--mapping", str(tmp_path / "nope.json")]) == 1


class TestHammerValidation:
    """The hammer flags are validated at the argparse layer: bad values
    exit with a usage error before any simulation starts."""

    def test_rejects_zero_and_negative_tests(self, capsys):
        for bad in ("0", "-3"):
            with pytest.raises(SystemExit):
                main(["hammer", "No.4", "--tests", bad])
        assert "--tests must be a positive integer" in capsys.readouterr().err

    def test_rejects_non_positive_minutes(self, capsys):
        for bad in ("0", "-5", "-0.5"):
            with pytest.raises(SystemExit):
                main(["hammer", "No.4", "--minutes", bad])
        assert "test duration must be positive" in capsys.readouterr().err

    def test_rejects_negative_decoy_rows(self, capsys):
        with pytest.raises(SystemExit):
            main(["hammer", "No.4", "--decoy-rows", "-1"])
        assert "--decoy-rows must be non-negative" in capsys.readouterr().err

    def test_rejects_vulnerability_outside_unit_interval(self, capsys):
        for bad in ("1.5", "-0.1"):
            with pytest.raises(SystemExit):
                main(["hammer", "No.4", "--vulnerability", bad])
        assert "--vulnerability must be within [0, 1]" in capsys.readouterr().err

    def test_rejects_non_numeric_values(self, capsys):
        for flag, bad in (
            ("--tests", "many"), ("--minutes", "short"),
            ("--decoy-rows", "few"), ("--vulnerability", "high"),
        ):
            with pytest.raises(SystemExit):
                main(["hammer", "No.4", flag, bad])

    def test_decoy_rows_and_vulnerability_accepted(self, capsys):
        assert main([
            "hammer", "No.4", "--tests", "1", "--minutes", "0.5",
            "--decoy-rows", "2", "--vulnerability", "0.3",
        ]) == 0
        assert "1 tests" in capsys.readouterr().out


class TestCampaignCli:
    SWEEP = [
        "campaign", "run", "--machines", "No.1", "--variants",
        "double_sided", "single_sided", "--mitigations", "none",
        "--tests", "1", "--duration", "5",
    ]

    def test_run_renders_the_leaderboard(self, capsys):
        assert main(list(self.SWEEP)) == 0
        out = capsys.readouterr().out
        assert "campaign flip-yield leaderboard" in out
        assert "2/2 tests" in out
        assert "double_sided" in out and "single_sided" in out

    def test_run_saves_a_loadable_artifact(self, tmp_path, capsys):
        from repro.rowhammer.campaign import load_artifact

        out_path = tmp_path / "campaign.json"
        assert main(list(self.SWEEP) + ["--out", str(out_path)]) == 0
        capsys.readouterr()
        artifact = load_artifact(out_path)
        assert artifact["totals"]["tests"] == 2

    def test_leaderboard_rerenders_the_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.json"
        assert main(list(self.SWEEP) + ["--out", str(out_path)]) == 0
        run_out = capsys.readouterr().out
        assert main(["campaign", "leaderboard", str(out_path)]) == 0
        board_out = capsys.readouterr().out
        assert "campaign flip-yield leaderboard" in board_out
        for line in board_out.strip().splitlines():
            assert line in run_out

    def test_leaderboard_rejects_missing_and_foreign_files(self, tmp_path, capsys):
        assert main(["campaign", "leaderboard", str(tmp_path / "no.json")]) == 1
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "other"}')
        assert main(["campaign", "leaderboard", str(foreign)]) == 1

    def test_run_rejects_unknown_axis_values(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--variants", "quad_sided"])
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--machines", "No.99"])
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--mitigations", "prayer"])

    def test_run_validates_tests_and_duration(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--tests", "0"])
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--duration", "-1"])

    def test_run_resumes_from_a_journal(self, tmp_path, capsys):
        journal = tmp_path / "campaign.jsonl"
        assert main(list(self.SWEEP) + ["--resume", str(journal)]) == 0
        first = capsys.readouterr().out
        assert main(list(self.SWEEP) + ["--resume", str(journal)]) == 0
        assert capsys.readouterr().out == first


class TestObsCli:
    """The --telemetry/--history plumbing and the obs subcommand group."""

    @staticmethod
    def _write_trace(path, partition_ns):
        import json

        spans = [
            {"type": "span", "id": 1, "parent": None, "name": "dramdig",
             "path": "dramdig", "sim_start_ns": 0.0,
             "sim_end_ns": partition_ns + 1e9},
            {"type": "span", "id": 2, "parent": 1, "name": "partition",
             "path": "dramdig/partition", "sim_start_ns": 0.0,
             "sim_end_ns": partition_ns},
        ]
        lines = [json.dumps({"format": "dramdig-trace", "version": 1})]
        lines += [json.dumps(span) for span in spans]
        lines.append(json.dumps({"type": "metrics"}))
        path.write_text("\n".join(lines) + "\n")

    def test_telemetry_stream_and_tail(self, tmp_path, capsys):
        stream = tmp_path / "run.stream"
        assert main(["--telemetry", str(stream), "run", "No.4"]) == 0
        capsys.readouterr()

        from repro.obs.telemetry import load_events

        events = load_events(stream)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-end"
        assert "phase" in kinds

        assert main(["obs", "tail", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "run-start" in out
        assert "phase" in out
        assert out.count("\n") == len(events)

    def test_telemetry_off_leaves_no_stream(self, tmp_path, capsys):
        assert main(["run", "No.4"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []

    def test_tail_rejects_missing_stream(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "absent.stream")]) == 1
        assert "no telemetry stream" in capsys.readouterr().err

    def test_obs_diff_equal_traces_exit_zero(self, tmp_path, capsys):
        base, other = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(base, 3e9)
        self._write_trace(other, 3e9)
        assert main(["obs", "diff", str(base), str(other)]) == 0
        out = capsys.readouterr().out
        assert "delta=+0.000s" in out
        assert "ok" in out

    def test_obs_diff_regression_exits_one(self, tmp_path, capsys):
        base, other = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(base, 3e9)
        self._write_trace(other, 4e9)
        assert main(["obs", "diff", str(base), str(other)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "attribution: dramdig/partition" in out
        # the same pair within a wide tolerance passes
        assert main([
            "obs", "diff", str(base), str(other), "--tolerance", "0.5",
        ]) == 0

    def test_obs_diff_rejects_missing_trace(self, tmp_path, capsys):
        assert main([
            "obs", "diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
        ]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_obs_critical_path(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace, 3e9)
        assert main(["obs", "critical-path", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "dramdig" in out
        assert "partition" in out
        assert main(["obs", "critical-path", str(trace), "--limit", "1"]) == 0
        assert "partition" not in capsys.readouterr().out

    def test_history_recording_and_rendering(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        trace = tmp_path / "run.jsonl"
        assert main([
            "--history", str(history), "run", "No.4", "--trace", str(trace),
        ]) == 0
        assert main(["--history", str(history), "run", "No.4"]) == 0
        capsys.readouterr()

        from repro.obs.history import load_history

        entries = load_history(history)
        assert len(entries) == 2
        assert entries[0]["command"] == "run"
        assert entries[0]["sim_ns"] is not None  # traced run has sim totals
        assert entries[0]["metrics"]["counters"]
        assert entries[1]["sim_ns"] is None  # untraced run: wall only

        assert main(["obs", "history", str(history), "--check"]) == 0
        out = capsys.readouterr().out
        assert "run" in out
        assert "no regressions" in out

    def test_obs_history_check_flags_regressions(self, tmp_path, capsys):
        import json

        history = tmp_path / "history.jsonl"
        entries = [
            {"format": "dramdig-history", "version": 1, "wall": 0.0,
             "command": "table1", "wall_s": 1.0, "sim_ns": 1e9},
            {"format": "dramdig-history", "version": 1, "wall": 0.0,
             "command": "table1", "wall_s": 1.0, "sim_ns": 2e9},
        ]
        history.write_text(
            "\n".join(json.dumps(entry) for entry in entries) + "\n"
        )
        assert main(["obs", "history", str(history)]) == 0
        assert "regression:" in capsys.readouterr().out
        assert main(["obs", "history", str(history), "--check"]) == 1

    def test_trace_summary_strict_flags_open_spans(self, tmp_path, capsys):
        import json

        trace = tmp_path / "killed.jsonl"
        lines = [
            json.dumps({"format": "dramdig-trace", "version": 1}),
            json.dumps({"type": "span", "id": 1, "parent": None,
                        "name": "dramdig", "path": "dramdig",
                        "status": "open"}),
            json.dumps({"type": "span", "id": 3, "parent": 99,
                        "name": "stray", "path": "stray"}),
        ]
        trace.write_text("\n".join(lines) + "\n")
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "UNCLOSED" in out
        assert "(orphan: parent 99 missing from trace)" in out
        assert main(["trace", "summary", str(trace), "--strict"]) == 1
        assert "trace inconsistency" in capsys.readouterr().err

    def test_interrupted_traced_run_salvages_a_partial_trace(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.cli as cli

        real_dispatch = cli._dispatch_command

        def boom(args):
            if args.command != "run":
                return real_dispatch(args)
            from repro.obs import tracing

            tracer = tracing.current_tracer()
            scope = tracer.span("dramdig")
            scope.__enter__()  # never closed: the run dies mid-span
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch_command", boom)
        trace = tmp_path / "partial.jsonl"
        with pytest.raises(KeyboardInterrupt):
            main(["run", "No.4", "--trace", str(trace)])
        capsys.readouterr()
        assert trace.exists()
        assert main(["trace", "summary", str(trace)]) == 0
        assert "UNCLOSED" in capsys.readouterr().out


class TestQuietProgressRouting:
    """--quiet must silence fleet/campaign progress while leaving the
    artefact bytes on stdout untouched."""

    def test_quiet_silences_campaign_progress(self, capsys):
        sweep = TestCampaignCli.SWEEP
        assert main(list(sweep)) == 0
        noisy = capsys.readouterr()
        assert "campaign:" in noisy.err
        assert main(["--quiet"] + list(sweep)) == 0
        quiet = capsys.readouterr()
        assert "campaign:" not in quiet.err
        assert quiet.out == noisy.out

    def test_quiet_silences_fleet_wave_progress(self, capsys):
        args = [
            "fleet", "run", "--fleet-size", "3", "--families", "1",
            "--wave", "2",
        ]
        assert main(list(args)) == 0
        noisy = capsys.readouterr()
        assert "wave 1/" in noisy.err
        assert "folded:" in noisy.err
        assert main(["--quiet"] + list(args)) == 0
        quiet = capsys.readouterr()
        assert "wave" not in quiet.err
        assert quiet.out == noisy.out
