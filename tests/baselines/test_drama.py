"""Tests for the DRAMA baseline — generic but slow and nondeterministic."""

import pytest

from repro.analysis import gf2
from repro.baselines.drama import (
    DramaConfig,
    DramaTool,
    _extend_rows_through_functions,
    _power_of_two_match,
)
from repro.dram.errors import ToolTimeoutError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine

# A faster config for tests: smaller pool, fewer rounds. Behaviour
# (success on quiet machines, timeout on noisy ones) is preserved.
FAST = DramaConfig(pool_size=2500, rounds=400, timeout_seconds=900.0)


def run_drama(name, machine_seed=1, tool_seed=0, config=FAST):
    machine = SimulatedMachine.from_preset(preset(name), seed=machine_seed)
    return DramaTool(config, seed=tool_seed).run(machine), machine


class TestQuietMachines:
    def test_finds_function_span_no1(self):
        result, _ = run_drama("No.1")
        assert result.belief is not None
        assert gf2.span_equal(
            result.belief.bank_functions, preset("No.1").mapping.bank_functions
        )

    def test_set_count_near_bank_count(self):
        result, _ = run_drama("No.1")
        assert 12 <= result.sets_found <= 16

    def test_wide_hash_found_on_no2(self):
        """DRAMA's brute force does reach the 7-bit hash (the paper's
        Table III shows runs where DRAMA's mapping was right on No.2)."""
        result, _ = run_drama("No.2")
        assert result.belief is not None
        assert gf2.span_equal(
            result.belief.bank_functions, preset("No.2").mapping.bank_functions
        )


class TestNondeterminism:
    def test_output_varies_across_runs(self):
        """Table I: DRAMA is not deterministic — different runs on the same
        machine give different mappings (phantom row bits from the
        single-shot scan are the dominant cause)."""
        outcomes = set()
        for tool_seed in range(8):
            result, _ = run_drama("No.1", machine_seed=3, tool_seed=tool_seed)
            if result.belief is None:
                outcomes.add("timeout")
            else:
                outcomes.add(
                    (result.belief.row_bits, tuple(sorted(result.belief.bank_functions)))
                )
        assert len(outcomes) > 1

    def test_some_runs_have_wrong_rows(self):
        """The zero-flip Table III entries come from runs whose believed
        rows are corrupted; that must happen within a few seeds."""
        truth = preset("No.1").mapping
        wrong = 0
        for tool_seed in range(8):
            result, _ = run_drama("No.1", machine_seed=3, tool_seed=tool_seed)
            if result.belief is None or not result.belief.hammer_equivalent(truth):
                wrong += 1
        assert wrong >= 1


class TestNoisyMachines:
    @pytest.mark.parametrize("name", ["No.3", "No.7"])
    def test_times_out(self, name):
        result, _ = run_drama(name)
        assert result.timed_out
        assert result.belief is None
        assert result.seconds >= FAST.timeout_seconds

    def test_run_or_raise(self):
        machine = SimulatedMachine.from_preset(preset("No.3"), seed=1)
        with pytest.raises(ToolTimeoutError):
            DramaTool(FAST, seed=0).run_or_raise(machine)


class TestCostModel:
    def test_slower_than_dramdig(self):
        """Figure 2: DRAMA costs more simulated time than DRAMDig on the
        same machine (default configs)."""
        from repro.core.dramdig import DramDig

        machine_a = SimulatedMachine.from_preset(preset("No.1"), seed=1)
        dramdig_seconds = DramDig().run(machine_a).total_seconds
        machine_b = SimulatedMachine.from_preset(preset("No.1"), seed=1)
        drama_seconds = DramaTool(seed=1).run(machine_b).seconds
        assert drama_seconds > 2 * dramdig_seconds

    def test_brute_force_charged(self):
        """The enumeration cost must appear on the clock even though the
        candidate space is computed algebraically."""
        machine = SimulatedMachine.from_preset(preset("No.4"), seed=1)
        tool = DramaTool(FAST, seed=0)
        result = tool.run(machine)
        assert result.seconds > 5.0


class TestHelpers:
    def test_power_of_two_match(self):
        assert _power_of_two_match(16, 4)
        assert _power_of_two_match(14, 4)
        assert not _power_of_two_match(28, 4)
        assert not _power_of_two_match(3, 4)

    def test_extend_rows(self):
        """No.1-style extension: coarse rows 20-32 grow down through
        (16,19), (15,18), (14,17)."""
        functions = [
            (1 << 6),
            (1 << 14) | (1 << 17),
            (1 << 15) | (1 << 18),
            (1 << 16) | (1 << 19),
        ]
        rows = _extend_rows_through_functions(tuple(range(20, 33)), functions)
        assert rows == tuple(range(17, 33))

    def test_extend_rows_stops_without_adjoining_function(self):
        rows = _extend_rows_through_functions((20, 21), [(1 << 3) | (1 << 10)])
        assert rows == (20, 21)

    def test_extend_rows_empty(self):
        assert _extend_rows_through_functions((), [(1 << 3)]) == ()
