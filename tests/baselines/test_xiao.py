"""Tests for the Xiao et al. baseline — paper Section IV-A behaviour."""

import pytest

from repro.baselines.xiao import CHANNEL_TEMPLATES, XiaoTool
from repro.dram.errors import ToolStuckError
from repro.dram.presets import preset, preset_names
from repro.machine.machine import SimulatedMachine

WORKS = [name for name in preset_names() if preset(name).xiao_compatible]
FAILS = [name for name in preset_names() if not preset(name).xiao_compatible]


@pytest.mark.parametrize("name", WORKS)
def test_succeeds_on_compatible_machines(name):
    machine = SimulatedMachine.from_preset(preset(name), seed=1)
    result = XiaoTool().run(machine)
    assert result.belief.hammer_equivalent(preset(name).mapping)


@pytest.mark.parametrize("name", FAILS)
def test_stuck_on_incompatible_machines(name):
    """Section IV-A: the tool cannot handle No.2 and No.6-9."""
    machine = SimulatedMachine.from_preset(preset(name), seed=1)
    with pytest.raises(ToolStuckError):
        XiaoTool().run(machine)


def test_failure_set_matches_paper():
    assert set(FAILS) == {"No.2", "No.6", "No.7", "No.8", "No.9"}


def test_no6_partial_functions():
    """On No.6 the tool resolves some two-bit functions before hanging, as
    the paper describes ('stuck after resolving ... 3 of 6 functions')."""
    machine = SimulatedMachine.from_preset(preset("No.6"), seed=1)
    with pytest.raises(ToolStuckError) as info:
        XiaoTool().run(machine)
    partial = info.value.partial_result
    assert partial
    truth = set(preset("No.6").mapping.bank_functions)
    assert set(partial) <= truth
    assert len(partial) >= 2


def test_stuck_burns_operator_budget():
    """A stuck run costs the operator real time (they kill it eventually)."""
    machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
    tool = XiaoTool()
    with pytest.raises(ToolStuckError):
        tool.run(machine)
    assert machine.elapsed_seconds >= tool.config.stuck_budget_seconds


def test_fast_when_it_works():
    """Table I: Xiao et al. is efficient (minutes)."""
    machine = SimulatedMachine.from_preset(preset("No.5"), seed=1)
    result = XiaoTool().run(machine)
    assert result.seconds < 30 * 60


def test_templates_cover_authors_platforms():
    assert ("Sandy Bridge", 2) in CHANNEL_TEMPLATES
    assert ("Haswell", 2) in CHANNEL_TEMPLATES
    assert ("Skylake", 2) not in CHANNEL_TEMPLATES


def test_haswell_template_is_the_wide_hash():
    """No.5 only works because the tool ships the authors' dual-channel
    Haswell hash; removing the template must break it."""
    machine = SimulatedMachine.from_preset(preset("No.5"), seed=1)
    saved = CHANNEL_TEMPLATES.pop(("Haswell", 2))
    try:
        with pytest.raises(ToolStuckError):
            XiaoTool().run(machine)
    finally:
        CHANNEL_TEMPLATES[("Haswell", 2)] = saved
