"""White-box tests of DRAMA's pipeline stages on controlled inputs."""

import numpy as np
import pytest

from repro.analysis import gf2
from repro.analysis.bits import deposit_bits
from repro.baselines.drama import DramaConfig, DramaTool
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

FAST = DramaConfig(pool_size=2500, rounds=400, timeout_seconds=600.0)


def quiet_machine(name="No.1", seed=0):
    return SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=NoiseParams.noiseless()
    )


@pytest.fixture
def tool_and_machine():
    machine = quiet_machine()
    tool = DramaTool(FAST, seed=3)
    pages = machine.allocate(int(machine.total_bytes * 0.6), "fragmented")
    threshold = tool._calibrate(machine, pages)
    return tool, machine, pages, threshold


class TestClustering:
    def test_sets_are_same_bank(self, tool_and_machine):
        tool, machine, pages, threshold = tool_and_machine
        sets = tool._cluster_sets(machine, pages, threshold)
        mapping = machine.ground_truth
        for members in sets:
            banks = {mapping.bank_of(int(address)) for address in members[:50]}
            assert len(banks) == 1

    def test_set_count_near_bank_count(self, tool_and_machine):
        tool, machine, pages, threshold = tool_and_machine
        sets = tool._cluster_sets(machine, pages, threshold)
        assert 12 <= len(sets) <= 16


class TestFunctionSearch:
    def test_synthetic_sets_recover_span(self, tool_and_machine):
        """Hand-built perfect same-bank sets yield exactly the true span."""
        tool, machine, _, _ = tool_and_machine
        mapping = machine.ground_truth
        rng = np.random.default_rng(0)
        sets = []
        for bank in range(16):
            rows = rng.integers(0, 2**16, size=40)
            columns = rng.integers(0, 8192, size=40)
            members = np.array(
                [
                    mapping.encode(
                        mapping.dram_address(0)._replace(
                            bank=bank, row=int(row), column=int(col)
                        )
                    )
                    for row, col in zip(rows, columns)
                ],
                dtype=np.uint64,
            )
            sets.append(members)
        functions = tool._search_functions(machine, sets, 33)
        assert gf2.span_equal(functions, mapping.bank_functions)

    def test_merged_sets_lose_functions(self, tool_and_machine):
        """Merging two banks into one 'set' (a threshold failure mode)
        removes the function separating them from the candidate space."""
        tool, machine, _, _ = tool_and_machine
        mapping = machine.ground_truth
        rng = np.random.default_rng(1)

        def bank_members(bank, count=40):
            rows = rng.integers(0, 2**16, size=count)
            columns = rng.integers(0, 8192, size=count)
            return [
                mapping.encode(
                    mapping.dram_address(0)._replace(
                        bank=bank, row=int(row), column=int(col)
                    )
                )
                for row, col in zip(rows, columns)
            ]

        # Banks 0 and 1 differ exactly in the channel function (6).
        sets = [
            np.array(bank_members(0) + bank_members(1), dtype=np.uint64)
        ] + [np.array(bank_members(b), dtype=np.uint64) for b in range(2, 16)]
        functions = tool._search_functions(machine, sets, 33)
        assert not gf2.span_equal(functions, mapping.bank_functions)
        assert not gf2.in_span(1 << 6, functions)  # the separator is lost


class TestRowScan:
    def test_noiseless_scan_finds_pure_rows(self, tool_and_machine):
        tool, machine, pages, threshold = tool_and_machine
        rows = tool._detect_rows(machine, pages, threshold, 33)
        # Pure rows of No.1 are 20..32 (17-19 shared with functions).
        assert set(rows) == set(range(20, 33))
