"""Tests for the Seaborn & Dullien blind-probing baseline."""

import pytest

from repro.baselines.seaborn import SeabornConfig, SeabornTool
from repro.dram.errors import ToolStuckError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine


def run_on(name, seed=2):
    machine = SimulatedMachine.from_preset(preset(name), seed=seed)
    return SeabornTool().run(machine, preset(name)), machine


class TestVulnerableMachines:
    def test_finds_working_strides_on_no1(self):
        result, _ = run_on("No.1")
        assert result.working_strides
        assert result.flips_observed >= 2

    def test_working_strides_are_row_moves(self):
        """Every flipping stride must be one the ground truth maps to
        same-bank-different-row most of the time."""
        result, machine = run_on("No.1")
        for stride in result.working_strides:
            assert result.sbdr_rates[stride] > 0.5, hex(stride)

    def test_column_strides_never_flip(self):
        """Strides inside a row (8 KiB and below) keep the pair in one row:
        no conflict, no hammering, no flips."""
        result, _ = run_on("No.2")
        small = [s for s in result.working_strides if s < 8192]
        assert not small


class TestSolidDimms:
    def test_nothing_on_no5(self):
        """No.5's DIMMs barely flip: the blind method is stone blind."""
        with pytest.raises(ToolStuckError, match="no flipping stride"):
            run_on("No.5")

    def test_partial_result_carries_sweep_data(self):
        machine = SimulatedMachine.from_preset(preset("No.5"), seed=2)
        with pytest.raises(ToolStuckError) as info:
            SeabornTool().run(machine, preset("No.5"))
        assert info.value.partial_result.sbdr_rates


class TestCost:
    def test_sweep_takes_hours(self):
        """Table I: the blind approach is 'within hours'."""
        result, machine = run_on("No.1")
        assert machine.elapsed_seconds > 3600

    def test_failed_sweep_also_takes_hours(self):
        machine = SimulatedMachine.from_preset(preset("No.5"), seed=2)
        with pytest.raises(ToolStuckError):
            SeabornTool().run(machine, preset("No.5"))
        assert machine.elapsed_seconds > 3600


def test_config_strides_bounded_by_memory():
    """Strides near the memory size are skipped, not crashed on."""
    config = SeabornConfig(stride_exponents=(13, 35))
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=2)
    with pytest.raises(ToolStuckError):
        SeabornTool(config).run(machine, preset("No.1"))
