"""White-box tests of Xiao et al.'s partner search and compensation."""

import numpy as np
import pytest

from repro.analysis.bits import bit, mask_of_bits, parity
from repro.baselines.xiao import XiaoConfig, XiaoTool
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


def quiet_setup(name):
    machine = SimulatedMachine.from_preset(
        preset(name), seed=0, noise=NoiseParams.noiseless()
    )
    tool = XiaoTool()
    pages = machine.allocate(int(machine.total_bytes * 0.8), "contiguous")
    threshold = tool._calibrate(machine, pages)
    return tool, machine, pages, threshold


class TestCompensation:
    def test_no_known_functions_needs_no_repair(self):
        tool = XiaoTool()
        assert tool._compensate(mask_of_bits([14, 18]), [], 18) == 0

    def test_template_compensation(self):
        """No.5's partner probe for (15,19) must be repaired against the
        Haswell template hash."""
        tool = XiaoTool()
        big = mask_of_bits([7, 8, 9, 12, 13, 18, 19])
        candidate = mask_of_bits([15, 19])
        repair = tool._compensate(candidate, [big], 19)
        assert repair is not None and repair != 0
        assert parity((candidate | repair) & big) == 0
        assert repair & candidate == 0

    def test_unsolvable_returns_none(self):
        """A function whose only free bit is the row itself cannot be
        compensated (the No.5 cursor-17 case)."""
        tool = XiaoTool()
        known = [mask_of_bits([17, 21])]
        assert tool._compensate(mask_of_bits([12, 17]), known, 17) is None


class TestPartnerSearch:
    def test_finds_true_partner_on_no1(self):
        tool, machine, pages, threshold = quiet_setup("No.1")
        partner = tool._find_partner(machine, pages, threshold, 19, [bit(6)])
        assert partner == 16

    def test_no_partner_for_pure_bank_bit(self):
        """Bit 16 of No.1 pairs with 19 — but 19 is above it, so the
        low-partner search finds nothing for cursor 16."""
        tool, machine, pages, threshold = quiet_setup("No.1")
        known = [bit(6), mask_of_bits([16, 19]), mask_of_bits([15, 18]),
                 mask_of_bits([14, 17])]
        assert tool._find_partner(machine, pages, threshold, 16, known) is None

    def test_template_enables_shared_row_partner(self):
        """On No.5, cursor 19 only resolves because the template hash is
        known and compensated against."""
        tool, machine, pages, threshold = quiet_setup("No.5")
        big = mask_of_bits([7, 8, 9, 12, 13, 18, 19])
        with_template = tool._find_partner(machine, pages, threshold, 19, [big])
        assert with_template == 15
        without = tool._find_partner(machine, pages, threshold, 19, [])
        assert without is None


class TestConfig:
    def test_defaults(self):
        config = XiaoConfig()
        assert config.measure_repeats == 4
        assert config.verify_agreement >= 0.95
