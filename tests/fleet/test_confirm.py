"""Confirmation campaigns: true beliefs pass, imposters and poison fail."""

import numpy as np
import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.random_mapping import random_mapping
from repro.fleet.confirm import (
    ConfirmConfig,
    believed_banks,
    believed_rows,
    plan_confirmation,
    run_confirmation,
)
from repro.fleet.spec import _mismatch_mapping
from repro.machine.machine import SimulatedMachine

GIB = 2**30

# A cheap config for tests: fewer pairs, smaller sample, same verdict
# logic. Allocation is done by the tests directly (64 MiB is plenty of
# bank diversity), so alloc_fraction is unused here.
CONFIG = ConfirmConfig(pairs=32, sample=512)


def small_mapping(start=0):
    """First generated mapping at most 4 GiB (keeps allocation cheap)."""
    for seed in range(start, start + 64):
        mapping = random_mapping(np.random.default_rng(seed))
        if mapping.geometry.total_bytes <= 4 * GIB:
            return mapping
    raise AssertionError("no small mapping in seed range")


@pytest.fixture(scope="module")
def mapping():
    return small_mapping()


@pytest.fixture(scope="module")
def machine_pages(mapping):
    machine = SimulatedMachine(mapping=mapping, seed=5)
    pages = machine.allocate(64 << 20, "fragmented")
    return machine, pages


class TestVectorizedBelief:
    def test_believed_banks_matches_scalar(self, mapping):
        belief = BeliefMapping.from_mapping(mapping)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, mapping.geometry.total_bytes, size=64, dtype=np.uint64)
        addrs &= ~np.uint64(63)
        banks = believed_banks(belief, addrs)
        for addr, bank in zip(addrs.tolist(), banks.tolist()):
            assert bank == belief.bank_of(addr)

    def test_believed_rows_matches_scalar(self, mapping):
        belief = BeliefMapping.from_mapping(mapping)
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, mapping.geometry.total_bytes, size=64, dtype=np.uint64)
        rows = believed_rows(belief, addrs)
        for addr, row in zip(addrs.tolist(), rows.tolist()):
            assert row == belief.row_of(addr)


class TestVerdicts:
    def test_true_belief_confirms(self, mapping, machine_pages):
        machine, pages = machine_pages
        belief = BeliefMapping.from_mapping(mapping)
        outcome = run_confirmation(
            machine, pages, belief, np.random.default_rng(7), CONFIG
        )
        assert outcome.confirmed
        assert outcome.reason == "confirmed"
        assert outcome.probes == 2 * CONFIG.pairs
        assert outcome.agreement >= CONFIG.purity

    def test_imposter_belief_rejected(self, mapping, machine_pages):
        """The adversarial case: same SystemInfo, one deformed function."""
        machine, pages = machine_pages
        belief = BeliefMapping.from_mapping(_mismatch_mapping(mapping, 0))
        outcome = run_confirmation(
            machine, pages, belief, np.random.default_rng(7), CONFIG
        )
        assert not outcome.confirmed
        assert outcome.reason == "disagreement"
        assert outcome.agreement < CONFIG.purity

    def test_every_mismatch_variant_rejected(self, mapping, machine_pages):
        machine, pages = machine_pages
        for variant in range(4):
            belief = BeliefMapping.from_mapping(_mismatch_mapping(mapping, variant))
            outcome = run_confirmation(
                machine, pages, belief, np.random.default_rng(7), CONFIG
            )
            assert not outcome.confirmed, variant

    def test_degenerate_belief_fails_planning(self, mapping, machine_pages):
        """A belief whose banks cannot be told apart must fall back, not
        be accepted by default."""
        machine, pages = machine_pages
        belief = BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=(0,),
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )
        outcome = run_confirmation(
            machine, pages, belief, np.random.default_rng(7), CONFIG
        )
        assert not outcome.confirmed
        assert outcome.reason == "plan-failed"
        assert outcome.probes == 0

    def test_deterministic_across_machine_rebuilds(self, mapping):
        """Same seeds, fresh machine: the verdict replays bit-identically
        (the property the checkpoint journal relies on)."""
        belief = BeliefMapping.from_mapping(mapping)
        outcomes = []
        for _ in range(2):
            machine = SimulatedMachine(mapping=mapping, seed=5)
            pages = machine.allocate(64 << 20, "fragmented")
            outcomes.append(
                run_confirmation(
                    machine, pages, belief, np.random.default_rng(11), CONFIG
                )
            )
        assert outcomes[0] == outcomes[1]


class TestPlanning:
    def test_plan_shapes(self, mapping):
        belief = BeliefMapping.from_mapping(mapping)
        rng = np.random.default_rng(3)
        addrs = rng.integers(
            0, mapping.geometry.total_bytes, size=2048, dtype=np.uint64
        ) & ~np.uint64(63)
        plan = plan_confirmation(belief, addrs, pairs=16)
        assert plan is not None
        bases, partners, predicted = plan
        assert bases.shape == partners.shape == predicted.shape == (32,)
        assert int(predicted.sum()) == 16
        banks_b = believed_banks(belief, bases)
        banks_p = believed_banks(belief, partners)
        rows_b = believed_rows(belief, bases)
        rows_p = believed_rows(belief, partners)
        assert np.array_equal(banks_b[predicted], banks_p[predicted])
        assert np.all(rows_b[predicted] != rows_p[predicted])
        assert np.all(banks_b[~predicted] != banks_p[~predicted])

    def test_plan_refuses_thin_samples(self, mapping):
        belief = BeliefMapping.from_mapping(mapping)
        addrs = np.array([0, 64], dtype=np.uint64)
        assert plan_confirmation(belief, addrs, pairs=16) is None


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pairs": 4},
            {"pairs": 64, "sample": 100},
            {"purity": 0.5},
            {"purity": 1.2},
            {"alloc_fraction": 0.0},
            {"alloc_fraction": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ConfirmConfig(**kwargs)
