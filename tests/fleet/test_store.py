"""Knowledge store: persistence, self-healing load, candidate ranking."""

import json

import pytest

from repro.fleet.spec import family_mapping
from repro.fleet.store import (
    STORE_FORMAT,
    KnowledgeStore,
    StoreEntry,
    system_from_facts,
    system_to_facts,
)
from repro.machine.sysinfo import SystemInfo
from repro.service.translation import mapping_fingerprint


@pytest.fixture
def mapping():
    return family_mapping(1)


@pytest.fixture
def system(mapping):
    return SystemInfo.from_geometry(mapping.geometry)


class TestSystemFacts:
    def test_roundtrip(self, system):
        assert system_from_facts(system_to_facts(system)) == system

    def test_json_safe(self, system):
        json.dumps(system_to_facts(system))


class TestPersistence:
    def test_roundtrip(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        entry = store.add(mapping, system, source="m000")
        store.save()

        loaded = KnowledgeStore(path)
        assert len(loaded) == 1
        again = loaded.entries[entry.key]
        assert again.mapping.equivalent_to(mapping)
        assert again.system == system
        assert again.source == "m000"
        assert not loaded.events

    def test_missing_file_is_cold_start(self, tmp_path):
        store = KnowledgeStore(tmp_path / "never.jsonl")
        assert len(store) == 0
        assert not store.events

    def test_breaker_state_persists(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        entry = store.add(mapping, system)
        store.record_failure(entry.key)
        store.record_failure(entry.key)
        store.quarantine(entry.key)
        store.save()

        loaded = KnowledgeStore(path)
        again = loaded.entries[entry.key]
        assert again.streak == 2
        assert again.quarantined


class TestSelfHealingLoad:
    def test_truncated_trailing_line_dropped(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        store.add(mapping, system)
        store.save()
        raw = path.read_bytes()
        path.write_bytes(raw.rstrip(b"\n") + b'\n{"key": "half-a-reco')

        loaded = KnowledgeStore(path)
        assert len(loaded) == 1  # the intact record survives
        assert loaded.dropped_records == 1
        assert any("not valid JSON" in event.detail for event in loaded.events)

    def test_garbled_bytes_do_not_crash(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        store.add(mapping, system)
        store.save()
        path.write_bytes(path.read_bytes() + b"\xff\xfe\x00garbage\n")

        loaded = KnowledgeStore(path)
        assert len(loaded) == 1
        assert loaded.dropped_records >= 1

    def test_tampered_record_fails_integrity(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        store.add(mapping, system)
        store.save()
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["confirmations"] = 9999  # forge the track record
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        loaded = KnowledgeStore(path)
        assert len(loaded) == 0
        assert loaded.dropped_records == 1
        assert any("integrity" in event.detail for event in loaded.events)

    def test_invalid_mapping_claim_dropped(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        store.add(mapping, system)
        store.save()
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        # Break the bijection but keep the integrity fingerprint honest,
        # so only the mapping revalidation can catch it.
        record["mapping"]["bank_functions"][0] = record["mapping"]["bank_functions"][1]
        del record["integrity"]
        from repro.fleet.store import _integrity

        record["integrity"] = _integrity(record)
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        loaded = KnowledgeStore(path)
        assert len(loaded) == 0
        assert any("revalidation" in event.detail for event in loaded.events)

    def test_foreign_format_cold_starts(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(json.dumps({"format": "other-tool", "version": 9}) + "\n")
        loaded = KnowledgeStore(path)
        assert len(loaded) == 0
        assert any(event.action == "foreign-format" for event in loaded.events)

    def test_header_format_constant(self, tmp_path, mapping, system):
        path = tmp_path / "store.jsonl"
        store = KnowledgeStore(path)
        store.add(mapping, system)
        store.save()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == STORE_FORMAT


class TestBaselineSnapshot:
    def test_reset_from_records_roundtrip(self, mapping, system):
        store = KnowledgeStore()
        entry = store.add(mapping, system, source="m001")
        records = store.to_records()

        other = KnowledgeStore()
        other.reset_from_records(records)
        assert len(other) == 1
        assert other.entries[entry.key].mapping.equivalent_to(mapping)


class TestMutation:
    def test_add_rehabilitates_quarantined(self, mapping, system):
        store = KnowledgeStore()
        entry = store.add(mapping, system)
        store.record_failure(entry.key)
        store.quarantine(entry.key)
        again = store.add(mapping, system)
        assert again is entry
        assert not entry.quarantined
        assert entry.streak == 0

    def test_confirmation_resets_streak(self, mapping, system):
        store = KnowledgeStore()
        entry = store.add(mapping, system)
        store.record_failure(entry.key)
        assert entry.streak == 1
        store.record_confirmation(entry.key)
        assert entry.streak == 0


class TestCandidates:
    def test_total_bytes_is_a_hard_gate(self, mapping, system):
        store = KnowledgeStore()
        store.add(mapping, system)
        other = family_mapping(2)
        query = SystemInfo.from_geometry(other.geometry)
        if query.total_bytes != system.total_bytes:
            assert store.candidates_for(query) == []

    def test_quarantined_never_offered(self, mapping, system):
        store = KnowledgeStore()
        entry = store.add(mapping, system)
        assert store.candidates_for(system)
        store.quarantine(entry.key)
        assert store.candidates_for(system) == []

    def test_ranking_prefers_similarity_then_confirmations(self, mapping, system):
        store = KnowledgeStore()
        first = store.add(mapping, system, source="a")
        # A second hypothesis with identical facts but a worse record.
        other = family_mapping(3)
        key = mapping_fingerprint(other)
        store.entries[key] = StoreEntry(
            key=key, mapping=other, system=system, confirmations=0
        )
        first.confirmations = 10
        ranked = store.candidates_for(system, limit=2, min_similarity=0.0)
        assert ranked[0] is first
