"""Circuit breaker semantics and SystemInfo similarity ranking."""

import numpy as np
import pytest

from repro.dram.random_mapping import random_geometry
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.similarity import system_similarity
from repro.machine.sysinfo import SystemInfo


class TestCircuitBreaker:
    def test_trips_exactly_once_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.failure("k")
        assert not breaker.failure("k")
        assert breaker.failure("k")  # the tripping failure reports True...
        assert breaker.is_open("k")
        assert not breaker.failure("k")  # ...and only that one does

    def test_success_resets_streak_and_closes(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.failure("k")
        breaker.success("k")
        assert not breaker.failure("k")  # streak restarted from zero
        breaker.failure("k")
        assert breaker.is_open("k")
        breaker.success("k")
        assert not breaker.is_open("k")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.failure("poisoned")
        assert breaker.is_open("poisoned")
        assert not breaker.is_open("healthy")

    def test_seed_adopts_persisted_state(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.seed("explicit", streak=0, quarantined=True)
        breaker.seed("by-streak", streak=3, quarantined=False)
        breaker.seed("live", streak=2, quarantined=False)
        assert breaker.is_open("explicit")
        assert breaker.is_open("by-streak")
        assert not breaker.is_open("live")
        assert breaker.failure("live")  # one more failure trips it

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestSystemSimilarity:
    def _info(self, seed):
        return SystemInfo.from_geometry(
            random_geometry(np.random.default_rng(seed))
        )

    def test_identical_facts_score_one(self):
        info = self._info(0)
        assert system_similarity(info, info) == 1.0

    def test_symmetric(self):
        a, b = self._info(0), self._info(1)
        assert system_similarity(a, b) == system_similarity(b, a)

    def test_bounded(self):
        for seed in range(10):
            score = system_similarity(self._info(0), self._info(seed))
            assert 0.0 <= score <= 1.0

    def test_total_bytes_does_not_count(self):
        """Size is the store's hard gate, not a similarity signal."""
        info = self._info(0)
        bigger = SystemInfo(
            generation=info.generation,
            total_bytes=info.total_bytes * 2,
            channels=info.channels,
            dimms_per_channel=info.dimms_per_channel,
            ranks_per_dimm=info.ranks_per_dimm,
            banks_per_rank=info.banks_per_rank,
            ecc=info.ecc,
        )
        assert system_similarity(info, bigger) == 1.0
