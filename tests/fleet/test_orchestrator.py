"""End-to-end fleet runs: amortization, adversaries, resume identity."""

import json

import pytest

from repro.fleet.confirm import ConfirmConfig
from repro.fleet.orchestrator import (
    FLEET_ARTIFACT_FORMAT,
    FleetConfig,
    FleetOutcome,
    _wave_slices,
    render_fleet,
    run_fleet,
    save_artifact,
)
from repro.fleet.spec import _mismatch_mapping, family_mapping
from repro.fleet.store import KnowledgeStore
from repro.machine.sysinfo import SystemInfo
from repro.obs import tracing as obs

# Cheap confirmation policy for tests: fewer pairs, smaller allocation.
CHEAP = ConfirmConfig(pairs=32, sample=512, alloc_fraction=0.05)


def _config(**overrides):
    defaults = dict(size=5, families=1, seed=0, max_gib=8, wave=2, confirm=CHEAP)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestWaveSlices:
    def test_exemplars_first_then_fixed_waves(self):
        assert _wave_slices(10, families=2, wave=4) == [(0, 2), (2, 6), (6, 10)]

    def test_single_machine(self):
        assert _wave_slices(1, families=2, wave=4) == [(0, 1)]

    def test_exact_fit(self):
        assert _wave_slices(6, families=2, wave=2) == [(0, 2), (2, 4), (4, 6)]


class TestConfig:
    def test_rejects_bad_values(self):
        for overrides in (
            {"size": 0},
            {"profile": "hostile"},
            {"wave": 0},
            {"max_candidates": 0},
        ):
            with pytest.raises(ValueError):
                _config(**overrides)

    def test_semantic_fingerprint_ignores_paths_and_jobs(self, tmp_path):
        base = _config()
        moved = _config(
            store_path=str(tmp_path / "s.jsonl"),
            journal_path=str(tmp_path / "j.jsonl"),
            jobs=2,
        )
        assert base.semantic_fingerprint() == moved.semantic_fingerprint()
        assert base.semantic_fingerprint() != _config(seed=1).semantic_fingerprint()


class TestLookalikeFleet:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_fleet(_config())

    def test_all_machines_correct(self, outcome):
        assert outcome.all_correct
        assert not outcome.failures

    def test_one_cold_start_rest_confirmed(self, outcome):
        counts = outcome.outcome_counts()
        assert counts["cold"] == 1
        assert counts["confirmed"] == 4
        assert counts["fallback"] == 0

    def test_scaling_curve_strictly_decreasing(self, outcome):
        curve = outcome.scaling_curve()
        assert len(curve) >= 2
        costs = [point["amortized_measurements"] for point in curve]
        assert all(late < early for early, late in zip(costs, costs[1:]))

    def test_store_learned_one_family(self, outcome):
        assert outcome.store_entries == 1
        assert outcome.quarantined == []

    def test_artifact_shape(self, outcome, tmp_path):
        artifact = outcome.artifact()
        assert artifact["format"] == FLEET_ARTIFACT_FORMAT
        assert len(artifact["machines"]) == 5
        assert artifact["summary"]["all_correct"] is True
        # The artifact must be path-free (the resume-identity contract).
        assert "store" not in json.dumps(artifact)
        path = tmp_path / "fleet.json"
        save_artifact(outcome, path)
        assert json.loads(path.read_text()) == artifact

    def test_render_is_deterministic_text(self, outcome):
        text = render_fleet(outcome)
        assert text == render_fleet(outcome)
        assert "all correct: yes" in text
        assert text.count("confirmed") >= 4


class TestAdversarialFleet:
    def test_poisoned_corrupt_store_still_converges(self, tmp_path):
        """The acceptance scenario: a poisoned entry ranked first, a
        corrupt store tail, and imposter machines — every machine must
        still end up with its true mapping, with the poison quarantined."""
        store_path = tmp_path / "store.jsonl"
        config = _config(
            size=5,
            profile="adversarial",
            mismatch_every=3,
            store_path=str(store_path),
            breaker_threshold=2,
        )
        family = family_mapping(config.specs()[0].family_seed)
        poison = _mismatch_mapping(family, 5)
        seeded = KnowledgeStore(store_path)
        entry = seeded.add(poison, SystemInfo.from_geometry(family.geometry))
        entry.confirmations = 50  # forged track record: ranks first
        seeded.save()
        # Corrupt the tail the way a killed rsync would.
        store_path.write_bytes(
            store_path.read_bytes() + b'{"key": "trunca\n\xff\xfegarble\n'
        )

        outcome = run_fleet(config)
        assert outcome.all_correct
        assert entry.key in outcome.quarantined
        assert outcome.store_dropped >= 2
        assert any(e.step == "knowledge-store" for e in outcome.events)
        assert any(e.action == "quarantine" for e in outcome.events)
        counts = outcome.outcome_counts()
        assert counts["failed"] == 0
        assert counts["fallback"] >= 1  # poison and imposters force searches
        # The poisoned hypothesis is gone from the persisted store's
        # candidate offerings too.
        reloaded = KnowledgeStore(store_path)
        assert reloaded.entries[entry.key].quarantined


class TestResume:
    def test_journaled_run_matches_and_replays_byte_identical(self, tmp_path):
        config = _config(size=4)
        reference = run_fleet(config)

        journaled_config = _config(
            size=4,
            store_path=str(tmp_path / "store.jsonl"),
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        first = run_fleet(journaled_config)
        assert json.dumps(first.artifact()) == json.dumps(reference.artifact())
        assert render_fleet(first) == render_fleet(reference)

        # Replay over the journal *and* the mutated store: the baseline
        # snapshot must shield the run from the store's new entries, and
        # every cell must come from the journal (zero re-probing).
        tracer = obs.Tracer()
        with obs.activate(tracer):
            second = run_fleet(journaled_config)
        assert json.dumps(second.artifact()) == json.dumps(first.artifact())
        assert render_fleet(second) == render_fleet(first)
        counters = tracer.metrics.counters
        assert counters.get("grid.cells_resumed") == 4
        assert "fleet.machines" not in counters


class TestEmptyOutcome:
    def test_scaling_curve_empty_without_results(self):
        outcome = FleetOutcome(config=_config(), machines=[])
        assert outcome.scaling_curve() == []
