"""Fleet composition: determinism, families, imposters."""

import pytest

from repro.fleet.spec import (
    MachineSpec,
    adversarial_fleet,
    family_mapping,
    lookalike_fleet,
    materialize_mapping,
)
from repro.machine.sysinfo import SystemInfo

GIB = 2**30


class TestMachineSpec:
    def test_payload_roundtrip(self):
        spec = MachineSpec("m007", family_seed=11, machine_seed=99, kind="mismatch", variant=7)
        assert MachineSpec.from_payload(spec.to_payload()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec("m000", 1, 2, kind="imposter")


class TestFamilies:
    def test_family_mapping_deterministic(self):
        assert family_mapping(42).equivalent_to(family_mapping(42))

    def test_distinct_families_differ(self):
        a, b = family_mapping(42), family_mapping(43)
        assert a.geometry != b.geometry or not a.equivalent_to(b)

    def test_max_gib_caps_geometry(self):
        for spec in lookalike_fleet(4, families=4, seed=0, max_gib=8):
            assert materialize_mapping(spec).geometry.total_bytes <= 8 * GIB


class TestLookalikeFleet:
    def test_deterministic(self):
        assert lookalike_fleet(8, seed=3) == lookalike_fleet(8, seed=3)

    def test_exemplars_front_loaded_then_round_robin(self):
        specs = lookalike_fleet(8, families=2, seed=0)
        seeds = [spec.family_seed for spec in specs]
        assert seeds[0] != seeds[1]
        assert seeds[2:] == [seeds[0], seeds[1]] * 3

    def test_lookalikes_share_ground_truth(self):
        specs = lookalike_fleet(6, families=2, seed=0, max_gib=8)
        assert materialize_mapping(specs[0]).equivalent_to(
            materialize_mapping(specs[2])
        )

    def test_machine_seeds_unique(self):
        specs = lookalike_fleet(16, families=2, seed=0)
        seeds = [spec.machine_seed for spec in specs]
        assert len(set(seeds)) == len(seeds)


class TestAdversarialFleet:
    def test_exemplars_stay_genuine(self):
        specs = adversarial_fleet(9, families=2, seed=0, mismatch_every=3)
        assert all(spec.kind == "lookalike" for spec in specs[:2])
        assert any(spec.kind == "mismatch" for spec in specs[2:])

    def test_imposter_reports_family_sysinfo_but_differs(self):
        specs = adversarial_fleet(9, families=2, seed=0, max_gib=8, mismatch_every=3)
        imposter = next(spec for spec in specs if spec.kind == "mismatch")
        family = family_mapping(imposter.family_seed)
        truth = materialize_mapping(imposter)
        assert SystemInfo.from_geometry(truth.geometry) == SystemInfo.from_geometry(
            family.geometry
        )
        assert not truth.equivalent_to(family)

    def test_imposter_mapping_is_valid(self):
        # _mismatch_mapping must stay a bijection: AddressMapping
        # validates on construction, so materializing is the assertion.
        specs = adversarial_fleet(12, families=2, seed=1, max_gib=8)
        for spec in specs:
            if spec.kind == "mismatch":
                materialize_mapping(spec)
