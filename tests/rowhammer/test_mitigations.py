"""Tests for the TRR/ECC mitigation stack and its attack integration."""

import numpy as np
import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.mitigations import MitigationStack, TrrModel

SHORT = HammerConfig(duration_seconds=30.0, test_variability=0.0)


def attack_on(name="No.2", vulnerability=0.3):
    machine = SimulatedMachine.from_preset(preset(name), seed=1)
    return DoubleSidedAttack(machine, config=SHORT, vulnerability=vulnerability)


def belief(name="No.2"):
    return BeliefMapping.from_mapping(preset(name).mapping)


class TestTrrModel:
    def test_tracked_pair_usually_caught(self):
        trr = TrrModel(tracker_entries=4, catch_probability=0.95)
        rng = np.random.default_rng(0)
        caught = sum(trr.intercepts(2, rng) for _ in range(1000))
        assert 900 < caught < 990

    def test_many_sided_dilutes_tracking(self):
        trr = TrrModel(tracker_entries=4, catch_probability=0.95)
        rng = np.random.default_rng(1)
        caught = sum(trr.intercepts(20, rng) for _ in range(1000))
        assert caught < 300  # tracker flooded

    def test_validation(self):
        with pytest.raises(ValueError):
            TrrModel(tracker_entries=0)
        with pytest.raises(ValueError):
            TrrModel(catch_probability=1.5)
        with pytest.raises(ValueError):
            TrrModel().intercepts(0, np.random.default_rng(0))


class TestMitigationStack:
    def test_no_mitigations_pass_through(self):
        stack = MitigationStack()
        result = stack.filter_window(10, 2, np.random.default_rng(0))
        assert result.observable == result.raw == 10

    def test_ecc_absorbs_sparse_flips(self):
        """Sparse flips land one per word; SECDED corrects all of them."""
        stack = MitigationStack(ecc=True, words_per_row=100_000)
        rng = np.random.default_rng(1)
        result = stack.filter_window(5, 2, rng)
        assert result.observable == 0
        assert result.corrected == 5

    def test_dense_flips_defeat_ecc_sometimes(self):
        """Cramming many flips into few words produces detected and/or
        silent outcomes."""
        stack = MitigationStack(ecc=True, words_per_row=4)
        rng = np.random.default_rng(2)
        totals = [stack.filter_window(12, 2, rng) for _ in range(50)]
        assert any(result.detected or result.silent for result in totals)

    def test_zero_flips_short_circuit(self):
        stack = MitigationStack(trr=TrrModel(), ecc=True)
        result = stack.filter_window(0, 2, np.random.default_rng(0))
        assert result.raw == result.observable == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MitigationStack().filter_window(-1, 2, np.random.default_rng(0))


class TestAttackIntegration:
    def test_trr_suppresses_double_sided(self):
        attack = attack_on()
        unmitigated = attack.run(belief(), seed=0)
        mitigated = attack.run(
            belief(),
            seed=0,
            mitigations=MitigationStack(trr=TrrModel()),
        )
        assert unmitigated.flips > 0
        assert mitigated.flips < unmitigated.flips * 0.2
        assert mitigated.stopped_by_trr > 0

    def test_decoys_bypass_trr_at_a_cost(self):
        """TRRespass: decoy rows flood the tracker, letting some flips
        through — but the shared activation budget weakens each window."""
        attack = attack_on()
        stack = MitigationStack(trr=TrrModel(tracker_entries=4))
        plain = attack.run(belief(), seed=0, mitigations=stack)
        many_sided = attack.run(belief(), seed=0, mitigations=stack, decoy_rows=14)
        no_trr = attack.run(belief(), seed=0)
        assert many_sided.flips > plain.flips
        assert many_sided.flips < no_trr.flips

    def test_too_many_decoys_starve_intensity(self):
        """Past some point the decoys eat the activation budget and the
        true pair drops below the disturbance threshold."""
        attack = attack_on()
        stack = MitigationStack(trr=TrrModel(tracker_entries=4))
        some = attack.run(belief(), seed=0, mitigations=stack, decoy_rows=14)
        flood = attack.run(belief(), seed=0, mitigations=stack, decoy_rows=60)
        assert flood.flips < max(some.flips, 1)

    def test_ecc_hides_flips_from_attacker(self):
        attack = attack_on()
        report = attack.run(
            belief(), seed=0, mitigations=MitigationStack(ecc=True)
        )
        assert report.raw_flips > 0
        assert report.flips <= report.raw_flips
        assert report.ecc_corrected > 0

    def test_decoy_validation(self):
        attack = attack_on()
        with pytest.raises(ValueError):
            attack.run(belief(), seed=0, decoy_rows=-1)
