"""Tests for in-DRAM row remapping and its effect on hammering."""

import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.faultmodel import RowhammerFaultModel
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.remapping import (
    ROW_REMAPS,
    adjacency_agreement,
    inverse_remap_row,
    remap_row,
)

SHORT = HammerConfig(duration_seconds=30.0, test_variability=0.0)


class TestRemapFunctions:
    @pytest.mark.parametrize("scheme", sorted(ROW_REMAPS))
    def test_involution(self, scheme):
        for row in range(64):
            assert inverse_remap_row(scheme, remap_row(scheme, row)) == row

    @pytest.mark.parametrize("scheme", sorted(ROW_REMAPS))
    def test_bijective_on_blocks(self, scheme):
        images = {remap_row(scheme, row) for row in range(256)}
        assert images == set(range(256))

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown row remap"):
            remap_row("zigzag", 5)

    def test_negative_row(self):
        with pytest.raises(ValueError):
            remap_row("none", -1)


class TestAdjacencyAgreement:
    def test_identity_always_agrees(self):
        assert adjacency_agreement("none") == 1.0

    def test_pair_swap_never_agrees(self):
        """Under r^1, the logical neighbours of r are physically at
        distances 1 and 3 — never both adjacent."""
        assert adjacency_agreement("pair_swap") == 0.0

    def test_bit3_flip_mostly_agrees(self):
        agreement = adjacency_agreement("bit3_flip")
        assert 0.7 < agreement < 0.95


class TestWindowFlips:
    def test_identity_matches_manual_hammer(self):
        model = RowhammerFaultModel(2**16, 0.4, seed=1)
        row = 1000
        direct = model.hammer(0, row, 200_000, 200_000, trial=3).flips
        windowed = model.window_flips(
            0, {row - 1: 200_000, row + 1: 200_000}, trial=3
        )
        # window_flips also evaluates the outer neighbours (single-sided,
        # below threshold, zero flips), so the totals match.
        assert windowed == direct

    def test_pair_swap_displaces_the_victim(self):
        """Under pair_swap the naive sandwich (999, 1001 -> physical 998,
        1000) still double-sides a row — physical 999 — but the *intended*
        victim (physical image of logical 1000, i.e. 1001) only sees
        single-sided pressure and never flips."""
        model = RowhammerFaultModel(2**16, 5.0, seed=1, row_remap="pair_swap")
        row = 1000  # even
        total = model.window_flips(0, {row - 1: 220_000, row + 1: 220_000})
        assert total > 0  # flips exist, somewhere
        intended_physical = remap_row("pair_swap", row)
        intended = model.hammer(
            0, intended_physical, activations_above=220_000, activations_below=0
        )
        assert intended.flips == 0  # but not where the attacker wanted

    def test_bit3_flip_breaks_boundary_sandwiches(self):
        """Across each 8-row boundary the naive sandwich falls apart under
        bit3_flip: physical aggressors land far apart, nothing in between."""
        model = RowhammerFaultModel(2**16, 5.0, seed=1, row_remap="bit3_flip")
        row = 1000  # 1000 % 8 == 0: the boundary case (999 -> 991^..)
        boundary_flips = model.window_flips(
            0, {999: 220_000, 1001: 220_000}
        )
        interior_flips = model.window_flips(
            0, {1001: 220_000, 1003: 220_000}
        )
        assert interior_flips > 0
        assert boundary_flips < interior_flips

    def test_remap_aware_sandwich_works(self):
        """Aiming at the *logical* rows whose physical images neighbour the
        victim restores the flips."""
        model = RowhammerFaultModel(2**16, 5.0, seed=1, row_remap="pair_swap")
        victim_logical = 1000
        victim_physical = remap_row("pair_swap", victim_logical)
        aggressors = {
            inverse_remap_row("pair_swap", victim_physical - 1): 220_000,
            inverse_remap_row("pair_swap", victim_physical + 1): 220_000,
        }
        assert model.window_flips(0, aggressors) > 0

    def test_invalid_scheme_rejected_at_construction(self):
        with pytest.raises(ValueError):
            RowhammerFaultModel(2**16, 0.1, row_remap="bogus")


class TestEndToEnd:
    def test_pair_swap_preserves_counts_but_moves_them(self):
        """Raw flip counts on a pair_swap DIMM stay in the same ballpark
        (the sandwich lands one row over); what breaks is targeting, which
        the fault-model-level tests above pin down."""
        machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
        belief = BeliefMapping.from_mapping(preset("No.2").mapping)
        straight = DoubleSidedAttack(
            machine, config=SHORT, vulnerability=0.3
        ).run(belief, seed=0)
        remapped = DoubleSidedAttack(
            machine, config=SHORT, vulnerability=0.3, row_remap="pair_swap"
        ).run(belief, seed=0)
        assert straight.flips > 50
        assert remapped.flips > straight.flips * 0.4

    def test_bit3_flip_reduces_counts_on_average(self):
        """bit3_flip kills the boundary sandwiches (~1/8 of victims); the
        per-run weak-cell variance is larger than that, so the drop only
        shows in the mean over several tests."""
        machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
        belief = BeliefMapping.from_mapping(preset("No.2").mapping)
        straight_attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=1.0)
        remapped_attack = DoubleSidedAttack(
            machine, config=SHORT, vulnerability=1.0, row_remap="bit3_flip"
        )
        straight = sum(straight_attack.run(belief, seed=s).flips for s in range(4))
        remapped = sum(remapped_attack.run(belief, seed=s).flips for s in range(4))
        assert 0.6 * straight < remapped < 0.99 * straight
