"""Tests for the double-sided attack driver and assessment."""

import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.assess import assess_vulnerability
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig

SHORT = HammerConfig(duration_seconds=30.0, test_variability=0.0)


def machine_for(name, seed=1):
    return SimulatedMachine.from_preset(preset(name), seed=seed)


def correct_belief(name):
    return BeliefMapping.from_mapping(preset(name).mapping)


class TestCorrectAim:
    def test_all_trials_double_sided(self):
        machine = machine_for("No.1")
        attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.1)
        report = attack.run(correct_belief("No.1"), seed=0)
        assert report.aim_accuracy > 0.99
        assert report.flips > 0

    def test_flip_rate_tracks_vulnerability(self):
        machine = machine_for("No.1")
        weak = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.02)
        strong = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.4)
        belief = correct_belief("No.1")
        assert strong.run(belief, seed=1).flips > 4 * weak.run(belief, seed=1).flips

    def test_invulnerable_machine_never_flips(self):
        machine = machine_for("No.4")
        attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.0)
        report = attack.run(correct_belief("No.4"), seed=0)
        assert report.flips == 0
        assert report.aim_accuracy > 0.99  # aim was fine; the DIMM is solid


class TestWrongAim:
    def test_phantom_row_bit_kills_flips(self):
        """The DRAMA failure mode: a phantom low row bit means 'row +- 1'
        never moves the physical row."""
        mapping = preset("No.1").mapping
        belief = BeliefMapping(
            address_bits=33,
            bank_functions=mapping.bank_functions,
            row_bits=(9,) + mapping.row_bits,
            column_bits=tuple(b for b in mapping.column_bits if b != 9),
        )
        machine = machine_for("No.1")
        attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.3)
        report = attack.run(belief, seed=0)
        assert report.aim_accuracy < 0.05
        assert report.flips <= 2

    def _belief_missing(self, name, low, high):
        mapping = preset(name).mapping
        functions = tuple(
            f for f in mapping.bank_functions if f != (1 << low) | (1 << high)
        )
        return BeliefMapping(
            address_bits=mapping.geometry.address_bits,
            bank_functions=functions,
            row_bits=mapping.row_bits,
            column_bits=mapping.column_bits,
        )

    def test_missing_row_lsb_function_displaces_but_still_flips(self):
        """Subtle physics: without the (14,17) function both aggressors are
        shifted into the *same* wrong bank (row bit 17 toggles for every
        +-1), so they still sandwich a row there — the flips move to
        unintended victims but the buffer scan finds them."""
        machine = machine_for("No.1")
        attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.3)
        correct_report = attack.run(correct_belief("No.1"), seed=0)
        broken_report = attack.run(self._belief_missing("No.1", 14, 17), seed=0)
        assert broken_report.aimed_double == 0  # never hits the intended victim
        assert broken_report.flips > correct_report.flips / 2

    def test_missing_row_bit1_function_kills_flips(self):
        """Without (15,18) the two aggressors split into *different* wrong
        banks (bit 18 toggles for only one of row +-1): every trial is
        single-sided and below the single-sided threshold."""
        machine = machine_for("No.1")
        attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.3)
        report = attack.run(self._belief_missing("No.1", 15, 18), seed=0)
        assert report.aimed_double == 0
        assert report.aimed_single > 0
        assert report.flips == 0

    def test_missing_row_bit2_function_halves_flips(self):
        """Without (16,19) only rows not crossing bit 19 keep both
        aggressors aligned: roughly half the trials stay double-sided."""
        machine = machine_for("No.1")
        attack = DoubleSidedAttack(machine, config=SHORT, vulnerability=0.3)
        correct_report = attack.run(correct_belief("No.1"), seed=0)
        report = attack.run(self._belief_missing("No.1", 16, 19), seed=0)
        attempted = report.trials - report.skipped
        assert 0.35 < report.aimed_double / attempted < 0.75
        assert report.flips < 0.85 * correct_report.flips


class TestBookkeeping:
    def test_trials_scale_with_duration(self):
        machine = machine_for("No.1")
        short = DoubleSidedAttack(
            machine, config=HammerConfig(duration_seconds=10.0), vulnerability=0.1
        ).run(correct_belief("No.1"), seed=0)
        long = DoubleSidedAttack(
            machine, config=HammerConfig(duration_seconds=40.0), vulnerability=0.1
        ).run(correct_belief("No.1"), seed=0)
        assert long.trials == pytest.approx(4 * short.trials, rel=0.05)

    def test_mode_counters_sum(self):
        machine = machine_for("No.2")
        report = DoubleSidedAttack(
            machine, config=SHORT, vulnerability=0.1
        ).run(correct_belief("No.2"), seed=0)
        assert (
            report.aimed_double + report.aimed_single + report.aimed_none
            + report.skipped
            == report.trials
        )

    def test_requires_vulnerability_or_model(self):
        with pytest.raises(ValueError, match="vulnerability"):
            DoubleSidedAttack(machine_for("No.1"))

    def test_clock_charged(self):
        machine = machine_for("No.1")
        DoubleSidedAttack(machine, config=SHORT, vulnerability=0.1).run(
            correct_belief("No.1"), seed=0
        )
        assert machine.elapsed_seconds >= SHORT.duration_seconds


class TestAssessment:
    def test_report_structure(self):
        machine = machine_for("No.1")
        report = assess_vulnerability(
            machine, correct_belief("No.1"), vulnerability=0.1, tests=3, config=SHORT
        )
        assert len(report.tests) == 3
        assert report.total_flips == sum(t.flips for t in report.tests)
        assert "3 tests" in report.summary()

    def test_verdict_scales(self):
        machine = machine_for("No.1")
        quiet = assess_vulnerability(
            machine, correct_belief("No.1"), vulnerability=0.0, tests=1, config=SHORT
        )
        assert quiet.verdict == "no flips observed"
        loud = assess_vulnerability(
            machine, correct_belief("No.1"), vulnerability=0.5, tests=1, config=SHORT
        )
        assert loud.verdict in ("vulnerable", "highly vulnerable")

    def test_validation(self):
        machine = machine_for("No.1")
        with pytest.raises(ValueError):
            assess_vulnerability(machine, correct_belief("No.1"), 0.1, tests=0)
