"""Tests for the single-sided and one-location hammer variants."""

import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.variants import one_location_test, single_sided_test

SHORT = HammerConfig(duration_seconds=30.0, test_variability=0.0)


@pytest.fixture(scope="module")
def setting():
    machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
    belief = BeliefMapping.from_mapping(preset("No.2").mapping)
    return machine, belief


def test_effectiveness_ordering(setting):
    """The literature's ordering: double-sided > one-location >
    single-sided (which is ~0 on moderately vulnerable DIMMs)."""
    machine, belief = setting
    vulnerability = 0.3
    double = DoubleSidedAttack(machine, config=SHORT, vulnerability=vulnerability).run(
        belief, seed=0
    )
    one_location = one_location_test(machine, belief, vulnerability, SHORT, seed=0)
    single = single_sided_test(machine, belief, vulnerability, SHORT, seed=0)
    assert double.flips > 3 * one_location.flips
    assert one_location.flips > single.flips
    assert single.flips <= 2


def test_one_location_needs_no_aiming_precision(setting):
    """One-location flips survive even a garbage row belief — the whole
    budget lands on whatever row the aggressor happens to be."""
    machine, _ = setting
    truth = preset("No.2").mapping
    garbage = BeliefMapping(
        address_bits=33,
        bank_functions=truth.bank_functions,
        row_bits=(9,) + truth.row_bits,
        column_bits=tuple(b for b in truth.column_bits if b != 9),
    )
    report = one_location_test(machine, garbage, 0.3, SHORT, seed=0)
    assert report.flips > 0


def test_reports_accounted(setting):
    machine, belief = setting
    report = single_sided_test(machine, belief, 0.3, SHORT, seed=0)
    assert report.trials == report.aimed_single + report.skipped
    report = one_location_test(machine, belief, 0.3, SHORT, seed=0)
    assert report.trials == report.aimed_single
