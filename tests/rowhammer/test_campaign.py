"""Tests for the campaign fuzzer: sweep space, grid dispatch, artifacts.

The CI smoke job (``scripts/campaign_kill_resume_smoke.py``) does the
real-SIGKILL variant; here resume is exercised deterministically by
truncating the journal, mirroring ``tests/evalsuite/test_resume.py``.
"""

import json

import pytest

import repro.parallel.supervisor as supervisor
from repro.parallel import GridPolicy
from repro.rowhammer.campaign import (
    CampaignSpec,
    build_leaderboard,
    campaign_artifact,
    campaign_trial_cell,
    load_artifact,
    mitigation_names,
    render_artifact,
    render_campaign,
    run_campaign,
    save_artifact,
    variant_names,
)

SPEC = CampaignSpec(
    machines=("No.1", "No.5"),
    variants=("double_sided", "single_sided"),
    mitigations=("none", "trr"),
    tests=1,
    duration_seconds=5.0,
    seed=1,
)


def _truncate_journal(path, keep: int) -> None:
    lines = path.read_text().splitlines()
    header, records = lines[0], lines[1:]
    assert len(records) > keep, "test needs a journal longer than the prefix"
    path.write_text("\n".join([header] + records[:keep]) + "\n")


def _counting_execute_cell(counter):
    real = supervisor.execute_cell

    def wrapped(cell):
        counter.append(cell.payload.get("name"))
        return real(cell)

    return wrapped


class TestSpec:
    def test_defaults_cover_the_full_axes(self):
        spec = CampaignSpec()
        assert spec.variants == variant_names()
        assert spec.mitigations == mitigation_names()
        assert spec.cell_count == len(spec.machines) * 4 * 4 * 2

    def test_rejects_unknown_axis_values(self):
        with pytest.raises(ValueError, match="machine"):
            CampaignSpec(machines=("No.99",))
        with pytest.raises(ValueError, match="variant"):
            CampaignSpec(variants=("quad_sided",))
        with pytest.raises(ValueError, match="mitigation"):
            CampaignSpec(mitigations=("prayer",))

    def test_rejects_degenerate_sweeps(self):
        with pytest.raises(ValueError, match="empty"):
            CampaignSpec(machines=())
        with pytest.raises(ValueError, match="test"):
            CampaignSpec(tests=0)
        with pytest.raises(ValueError, match="duration"):
            CampaignSpec(duration_seconds=0.0)

    def test_combos_are_machine_major_and_complete(self):
        combos = list(SPEC.combos())
        assert len(combos) == SPEC.cell_count == 8
        assert combos[0] == ("No.1", "double_sided", "none", 0)
        assert combos[-1] == ("No.5", "single_sided", "trr", 0)
        assert len(set(combos)) == len(combos)

    def test_hammer_trials_per_test(self):
        # 64 ms refresh window + 6 ms overhead per victim trial.
        assert SPEC.hammer_trials_per_test() == int(5.0 / 0.07)

    def test_to_dict_is_json_ready(self):
        record = SPEC.to_dict()
        assert json.loads(json.dumps(record)) == record
        assert record["machines"] == ["No.1", "No.5"]


class TestTrialCell:
    def test_deterministic(self):
        args = ("t", "No.1", "double_sided", "trr", 1, 0, 5.0)
        assert campaign_trial_cell(*args) == campaign_trial_cell(*args)

    def test_distinct_test_indices_hammer_differently(self):
        first = campaign_trial_cell("a", "No.1", "double_sided", "none", 1, 0, 30.0)
        second = campaign_trial_cell("b", "No.1", "double_sided", "none", 1, 1, 30.0)
        assert first.test_index != second.test_index
        assert (first.flips, first.raw_flips) != (second.flips, second.raw_flips)

    def test_counter_invariants_hold(self):
        result = campaign_trial_cell("t", "No.1", "many_sided_6", "trr_ecc", 1, 0, 10.0)
        assert (
            result.stopped_by_trr + result.ecc_corrected + result.ecc_detected
            + result.ecc_silent + result.flips
            == result.raw_flips
        )
        assert (
            result.aimed_double + result.aimed_single + result.aimed_none
            + result.skipped
            == result.trials
        )


class TestRunAndLeaderboard:
    def test_serial_run_aggregates_consistently(self):
        outcome = run_campaign(SPEC)
        assert not outcome.failures
        assert len(outcome.completed) == SPEC.cell_count
        per_test = SPEC.hammer_trials_per_test()
        assert outcome.total_trials == SPEC.cell_count * per_test

        rows = build_leaderboard(outcome)
        assert len(rows) == 8  # one per configuration
        assert sum(row.flips for row in rows) == outcome.total_flips
        assert sum(row.trials for row in rows) == outcome.total_trials
        yields = [row.flips_per_minute for row in rows]
        assert yields == sorted(yields, reverse=True)

    def test_render_contains_the_totals_line(self):
        outcome = run_campaign(SPEC)
        rendered = render_campaign(outcome)
        assert rendered.startswith("campaign flip-yield leaderboard")
        assert (
            f"8/8 tests, {outcome.total_trials} hammer trials, "
            f"{outcome.total_flips} observable flips" in rendered
        )


class TestResume:
    def test_truncated_journal_resume_is_byte_identical_and_minimal(
        self, tmp_path, monkeypatch
    ):
        cold = run_campaign(SPEC)
        journal = tmp_path / "campaign.jsonl"
        first = run_campaign(SPEC, journal=journal)
        assert render_campaign(first) == render_campaign(cold)

        total = len(journal.read_text().splitlines()) - 1
        keep = 3
        _truncate_journal(journal, keep)
        executed = []
        monkeypatch.setattr(
            supervisor, "execute_cell", _counting_execute_cell(executed)
        )
        resumed = run_campaign(SPEC, journal=journal)
        assert render_campaign(resumed) == render_campaign(cold)
        assert campaign_artifact(resumed) == campaign_artifact(cold)
        assert len(executed) == total - keep

    def test_full_journal_resume_executes_nothing(self, tmp_path, monkeypatch):
        journal = tmp_path / "campaign.jsonl"
        run_campaign(SPEC, journal=journal)
        executed = []
        monkeypatch.setattr(
            supervisor, "execute_cell", _counting_execute_cell(executed)
        )
        run_campaign(SPEC, journal=journal)
        assert executed == []

    def test_spec_change_invalidates_the_journal(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_campaign(SPEC, journal=journal)
        reseeded = CampaignSpec(
            machines=SPEC.machines, variants=SPEC.variants,
            mitigations=SPEC.mitigations, tests=SPEC.tests,
            duration_seconds=SPEC.duration_seconds, seed=2,
        )
        cold = run_campaign(reseeded)
        crossed = run_campaign(reseeded, journal=journal)
        assert render_campaign(crossed) == render_campaign(cold)


class TestArtifact:
    def test_save_load_render_roundtrip(self, tmp_path):
        outcome = run_campaign(SPEC)
        path = tmp_path / "campaign.json"
        save_artifact(outcome, path)
        artifact = load_artifact(path)
        assert artifact["format"] == "dramdig-campaign-v1"
        assert artifact["spec"] == SPEC.to_dict()
        assert artifact["totals"]["flips"] == outcome.total_flips
        assert render_artifact(artifact) == render_campaign(outcome)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a dramdig-campaign-v1"):
            load_artifact(path)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not JSON"):
            load_artifact(path)


class TestFailures:
    def test_failed_trials_render_as_a_manifest(self, monkeypatch):
        real = supervisor.execute_cell

        def sabotage(cell):
            if cell.payload.get("name") == "No.5/single_sided/trr/t0":
                raise RuntimeError("injected trial failure")
            return real(cell)

        monkeypatch.setattr(supervisor, "execute_cell", sabotage)
        outcome = run_campaign(SPEC, supervision=GridPolicy())
        assert len(outcome.failures) == 1
        assert len(outcome.completed) == SPEC.cell_count - 1

        rendered = render_campaign(outcome)
        assert "7/8 tests" in rendered
        assert "No.5/single_sided/trr/t0" in rendered

        artifact = campaign_artifact(outcome)
        assert artifact["failures"][0]["name"] == "No.5/single_sided/trr/t0"
        assert "No.5/single_sided/trr/t0" in render_artifact(artifact)
