"""Property-style counter invariants for HammerReport accounting.

Every hammering variant, with or without a mitigation stack, must keep
the report's counters consistent: mitigations reclassify raw flips (TRR
stops them, ECC corrects/detects/misses them) but never invent or lose
any. These hold for *every* seed/stack/variant combination, so the
suite sweeps a small grid of them rather than hand-picking examples.
"""

import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.campaign import mitigation_names, mitigation_stack
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.variants import one_location_test, single_sided_test

FAST = HammerConfig(duration_seconds=8.0)
SEEDS = (0, 1, 2)


def _check_invariants(report, mitigated: bool) -> None:
    # Aim classification partitions the trials.
    assert (
        report.aimed_double + report.aimed_single + report.aimed_none
        + report.skipped
        == report.trials
    )
    # Counters are counts.
    for name in (
        "flips", "raw_flips", "trials", "skipped", "stopped_by_trr",
        "ecc_corrected", "ecc_detected", "ecc_silent",
    ):
        assert getattr(report, name) >= 0, name
    # Mitigations reclassify raw flips, never invent or lose them.
    assert (
        report.stopped_by_trr + report.ecc_corrected + report.ecc_detected
        + report.ecc_silent + report.flips
        == report.raw_flips
    )
    if not mitigated:
        assert report.flips == report.raw_flips
        assert report.stopped_by_trr == 0
        assert report.ecc_corrected == report.ecc_detected == report.ecc_silent == 0
    assert 0.0 <= report.aim_accuracy <= 1.0


def _machine(seed):
    return SimulatedMachine.from_preset(preset("No.1"), seed=seed)


def _belief():
    return BeliefMapping.from_mapping(preset("No.1").mapping)


@pytest.mark.parametrize("mitigation", mitigation_names())
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("decoy_rows", (0, 6))
def test_double_sided_invariants(mitigation, seed, decoy_rows):
    stack = mitigation_stack(mitigation)
    attack = DoubleSidedAttack(_machine(seed), config=FAST, vulnerability=0.4)
    report = attack.run(
        _belief(), seed=seed, mitigations=stack, decoy_rows=decoy_rows
    )
    assert report.trials > 0
    _check_invariants(report, mitigated=stack is not None)


@pytest.mark.parametrize("mitigation", mitigation_names())
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("variant", (single_sided_test, one_location_test))
def test_variant_invariants(mitigation, seed, variant):
    stack = mitigation_stack(mitigation)
    report = variant(
        _machine(seed), _belief(), vulnerability=0.4, config=FAST,
        seed=seed, mitigations=stack,
    )
    assert report.trials > 0
    _check_invariants(report, mitigated=stack is not None)


@pytest.mark.parametrize("mitigation", ("trr", "ecc", "trr_ecc"))
def test_mitigation_stacks_actually_engage(mitigation):
    """With a vulnerable DIMM the stack must reclassify some raw flips —
    a stack that books nothing would make the sweep axis meaningless.
    (Raw flips themselves are not compared across stacks: filtering
    draws from the shared RNG stream, which legitimately shifts later
    stochastic-rounding draws.)"""
    attack = DoubleSidedAttack(_machine(1), config=FAST, vulnerability=0.4)
    report = attack.run(
        _belief(), seed=1, mitigations=mitigation_stack(mitigation)
    )
    assert report.raw_flips > 0
    assert report.flips < report.raw_flips
    reclassified = (
        report.stopped_by_trr + report.ecc_corrected + report.ecc_detected
        + report.ecc_silent
    )
    assert reclassified == report.raw_flips - report.flips
    if "trr" in mitigation:
        assert report.stopped_by_trr > 0
    if "ecc" in mitigation:
        assert (
            report.ecc_corrected + report.ecc_detected + report.ecc_silent > 0
        )
