"""Tests for the assessment report, including the verdict edge cases.

The broader assessment workflow is covered in ``test_hammer.py``; this
module pins the report's own logic — in particular the regression where
``verdict`` returned "untested" for a report that *did* observe flips
but accumulated no simulated time.
"""

import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.assess import AssessmentReport, assess_vulnerability
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig, HammerReport

SHORT = HammerConfig(duration_seconds=30.0, test_variability=0.0)


def _report(flips: int, duration_seconds: float) -> HammerReport:
    return HammerReport(flips=flips, trials=1, duration_seconds=duration_seconds)


class TestVerdictEdgeCases:
    def test_flips_with_zero_duration_is_not_untested(self):
        """Regression: flips observed in zero simulated minutes are an
        unbounded rate — the verdict must never claim the machine was
        untested when tests ran and flipped bits."""
        report = AssessmentReport(tests=[_report(flips=5, duration_seconds=0.0)])
        assert report.total_flips == 5
        assert report.verdict == "highly vulnerable"

    def test_flips_with_negative_duration_is_not_untested(self):
        report = AssessmentReport(tests=[_report(flips=1, duration_seconds=-1.0)])
        assert report.verdict == "highly vulnerable"

    def test_no_tests_is_untested(self):
        assert AssessmentReport().verdict == "untested"

    def test_zero_duration_zero_flips_is_untested(self):
        report = AssessmentReport(tests=[_report(flips=0, duration_seconds=0.0)])
        assert report.verdict == "untested"

    def test_summary_carries_the_verdict(self):
        report = AssessmentReport(tests=[_report(flips=5, duration_seconds=0.0)])
        assert report.summary().endswith("highly vulnerable")

    def test_positive_duration_thresholds_unchanged(self):
        minute = 60.0
        assert (
            AssessmentReport(tests=[_report(0, 5 * minute)]).verdict
            == "no flips observed"
        )
        assert (
            AssessmentReport(tests=[_report(10, 5 * minute)]).verdict
            == "weakly vulnerable"
        )
        assert (
            AssessmentReport(tests=[_report(100, 5 * minute)]).verdict
            == "vulnerable"
        )
        assert (
            AssessmentReport(tests=[_report(1000, 5 * minute)]).verdict
            == "highly vulnerable"
        )


class TestDecoyRowsPassThrough:
    def test_decoy_rows_reach_the_attack(self, monkeypatch):
        seen = []
        original = DoubleSidedAttack.run

        def spy(self, belief, seed=0, mitigations=None, decoy_rows=0,
                planner=None):
            seen.append(decoy_rows)
            return original(
                self, belief, seed=seed, mitigations=mitigations,
                decoy_rows=decoy_rows, planner=planner,
            )

        monkeypatch.setattr(DoubleSidedAttack, "run", spy)
        machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
        belief = BeliefMapping.from_mapping(preset("No.1").mapping)
        assess_vulnerability(
            machine, belief, vulnerability=0.1, tests=2,
            config=HammerConfig(duration_seconds=5.0), decoy_rows=4,
        )
        assert seen == [4, 4]

    def test_decoys_change_the_outcome(self):
        """Decoys share the activation budget: enough of them push each
        aggressor below the double-sided threshold, so a many-sided
        assessment must not silently produce plain double-sided numbers
        (30 decoys -> ~14k activations each, under the 50k threshold)."""
        def assess(decoy_rows):
            machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
            belief = BeliefMapping.from_mapping(preset("No.1").mapping)
            return assess_vulnerability(
                machine, belief, vulnerability=0.3, tests=1, config=SHORT,
                decoy_rows=decoy_rows,
            )

        assert assess(0).total_flips > 0
        assert assess(30).total_flips < assess(0).total_flips

    def test_validation_still_rejects_zero_tests(self):
        machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
        belief = BeliefMapping.from_mapping(preset("No.1").mapping)
        with pytest.raises(ValueError):
            assess_vulnerability(machine, belief, 0.1, tests=0)
