"""Tests for the rowhammer fault model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rowhammer.faultmodel import (
    DOUBLE_SIDED_THRESHOLD,
    SINGLE_SIDED_THRESHOLD,
    RowhammerFaultModel,
)


@pytest.fixture
def model():
    return RowhammerFaultModel(rows_per_bank=2**16, vulnerability=0.3, seed=42)


class TestWeakCells:
    def test_deterministic_per_machine(self, model):
        assert model.weak_cells(3, 1000) == model.weak_cells(3, 1000)

    def test_varies_across_rows(self, model):
        counts = {model.weak_cells(0, row) for row in range(200)}
        assert len(counts) > 1

    def test_different_seed_different_cells(self):
        a = RowhammerFaultModel(2**16, 0.3, seed=1)
        b = RowhammerFaultModel(2**16, 0.3, seed=2)
        counts_a = [a.weak_cells(0, r) for r in range(100)]
        counts_b = [b.weak_cells(0, r) for r in range(100)]
        assert counts_a != counts_b

    def test_mean_tracks_vulnerability(self):
        model = RowhammerFaultModel(2**16, 0.5, seed=7)
        mean = sum(model.weak_cells(0, r) for r in range(4000)) / 4000
        assert 0.4 < mean < 0.6

    def test_zero_vulnerability(self):
        model = RowhammerFaultModel(2**16, 0.0, seed=0)
        assert all(model.weak_cells(0, r) == 0 for r in range(50))

    def test_row_bounds(self, model):
        with pytest.raises(ValueError):
            model.weak_cells(0, 2**16)


class TestHammer:
    def test_double_sided_flips(self, model):
        total = sum(
            model.hammer(0, row, 200_000, 200_000, trial=row).flips
            for row in range(500)
        )
        assert total > 50

    def test_no_hammer_no_flips(self, model):
        outcome = model.hammer(0, 100, 0, 0)
        assert outcome.flips == 0
        assert outcome.mode == "none"

    def test_below_threshold_no_flips(self, model):
        outcome = model.hammer(0, 100, DOUBLE_SIDED_THRESHOLD // 4, DOUBLE_SIDED_THRESHOLD // 4)
        assert outcome.mode == "none"

    def test_single_sided_weaker(self, model):
        double = sum(
            model.hammer(0, row, 250_000, 250_000, trial=row).flips
            for row in range(2000)
        )
        single = sum(
            model.hammer(0, row, 0, SINGLE_SIDED_THRESHOLD, trial=row).flips
            for row in range(2000)
        )
        assert single < double / 3

    def test_single_sided_mode_label(self, model):
        outcome = model.hammer(0, 5, SINGLE_SIDED_THRESHOLD, 0)
        assert outcome.mode == "single"

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.hammer(0, 100, -1, 0)
        with pytest.raises(ValueError):
            model.hammer(0, 2**17, 10, 10)

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=1_000_000),
        st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=50)
    def test_flips_bounded_by_weak_cells(self, row, above, below):
        model = RowhammerFaultModel(2**16, 0.5, seed=3)
        outcome = model.hammer(0, row, above, below)
        assert 0 <= outcome.flips <= model.weak_cells(0, row)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RowhammerFaultModel(1, 0.1)
        with pytest.raises(ValueError):
            RowhammerFaultModel(16, -0.1)
