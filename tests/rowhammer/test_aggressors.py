"""Tests for the compiled batch aggressor planner."""

import numpy as np
import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.errors import SingularMappingError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.aggressors import CompiledAggressorPlanner
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig


def _belief(mapping):
    return BeliefMapping.from_mapping(mapping)


class TestPlanning:
    def test_pairs_sandwich_victims(self):
        mapping = preset("No.2").mapping
        planner = CompiledAggressorPlanner.from_mapping(mapping)
        rng = np.random.default_rng(0)
        victims = rng.integers(
            0, 1 << mapping.geometry.address_bits, 2000, dtype=np.uint64
        )
        plan = planner.plan(victims)
        assert len(plan) == 2000
        for index in np.flatnonzero(plan.valid)[:200]:
            victim = int(victims[index])
            above = int(plan.above[index])
            below = int(plan.below[index])
            assert mapping.bank_of(above) == mapping.bank_of(victim)
            assert mapping.bank_of(below) == mapping.bank_of(victim)
            assert mapping.row_of(above) == mapping.row_of(victim) - 1
            assert mapping.row_of(below) == mapping.row_of(victim) + 1

    def test_edge_rows_marked_invalid(self):
        mapping = preset("No.1").mapping
        compiled = mapping.compiled
        planner = CompiledAggressorPlanner.from_mapping(mapping)
        top = compiled.encode(
            np.zeros(1, dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
        )
        bottom = compiled.encode(
            np.zeros(1, dtype=np.uint64),
            np.array([compiled.rows - 1], dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
        )
        middle = compiled.encode(
            np.zeros(1, dtype=np.uint64),
            np.array([compiled.rows // 2], dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
        )
        plan = planner.plan(np.concatenate([top, bottom, middle]))
        assert list(plan.valid) == [False, False, True]
        assert plan.planned == 1

    def test_matches_scalar_aim_semantics(self):
        """Planner and BeliefMapping.aim_row_neighbor agree on the
        believed bank and row of every aggressor (columns may differ)."""
        mapping = preset("No.4").mapping
        belief = _belief(mapping)
        planner = CompiledAggressorPlanner.from_belief(belief)
        rng = np.random.default_rng(7)
        victims = rng.integers(
            0, 1 << mapping.geometry.address_bits, 300, dtype=np.uint64
        )
        plan = planner.plan(victims)
        for index in range(300):
            victim = int(victims[index])
            scalar_above = belief.aim_row_neighbor(victim, -1)
            scalar_below = belief.aim_row_neighbor(victim, +1)
            if not plan.valid[index]:
                assert scalar_above is None or scalar_below is None
                continue
            assert scalar_above is not None and scalar_below is not None
            for scalar, planned in (
                (scalar_above, int(plan.above[index])),
                (scalar_below, int(plan.below[index])),
            ):
                assert belief.bank_of(scalar) == belief.bank_of(planned)
                assert belief.row_of(scalar) == belief.row_of(planned)

    def test_singular_belief_raises_at_construction(self):
        belief = BeliefMapping(
            address_bits=6,
            bank_functions=(0b11, 0b11),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        with pytest.raises(SingularMappingError):
            CompiledAggressorPlanner.from_belief(belief)


class TestAttackIntegration:
    def test_planner_path_hammers_effectively(self):
        machine_preset = preset("No.4")
        machine = SimulatedMachine.from_preset(machine_preset, seed=3)
        attack = DoubleSidedAttack(
            machine,
            vulnerability=machine_preset.hammer_vulnerability,
            config=HammerConfig(duration_seconds=20.0),
        )
        belief = _belief(machine_preset.mapping)
        planner = CompiledAggressorPlanner.from_belief(belief)
        report = attack.run(belief, seed=1, planner=planner)
        # A correct belief aims true double-sided layouts whichever
        # column the planner picked.
        assert report.trials > 0
        assert report.aim_accuracy > 0.9

    def test_default_path_unchanged_by_planner_arg(self):
        """run() without a planner must produce the historical result —
        same machine, seed and belief give identical reports."""
        machine_preset = preset("No.4")
        belief = _belief(machine_preset.mapping)
        config = HammerConfig(duration_seconds=10.0)

        def run_once():
            machine = SimulatedMachine.from_preset(machine_preset, seed=3)
            attack = DoubleSidedAttack(
                machine,
                vulnerability=machine_preset.hammer_vulnerability,
                config=config,
            )
            return attack.run(belief, seed=1)

        assert run_once() == run_once()
