"""Tests for the compiled batch aggressor planner."""

import numpy as np
import pytest

from repro.dram.belief import BeliefMapping
from repro.dram.errors import SingularMappingError
from repro.dram.presets import preset, preset_names
from repro.dram.random_mapping import random_mapping
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.aggressors import CompiledAggressorPlanner
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig


def _belief(mapping):
    return BeliefMapping.from_mapping(mapping)


class TestPlanning:
    def test_pairs_sandwich_victims(self):
        mapping = preset("No.2").mapping
        planner = CompiledAggressorPlanner.from_mapping(mapping)
        rng = np.random.default_rng(0)
        victims = rng.integers(
            0, 1 << mapping.geometry.address_bits, 2000, dtype=np.uint64
        )
        plan = planner.plan(victims)
        assert len(plan) == 2000
        for index in np.flatnonzero(plan.valid)[:200]:
            victim = int(victims[index])
            above = int(plan.above[index])
            below = int(plan.below[index])
            assert mapping.bank_of(above) == mapping.bank_of(victim)
            assert mapping.bank_of(below) == mapping.bank_of(victim)
            assert mapping.row_of(above) == mapping.row_of(victim) - 1
            assert mapping.row_of(below) == mapping.row_of(victim) + 1

    def test_edge_rows_marked_invalid(self):
        mapping = preset("No.1").mapping
        compiled = mapping.compiled
        planner = CompiledAggressorPlanner.from_mapping(mapping)
        top = compiled.encode(
            np.zeros(1, dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
        )
        bottom = compiled.encode(
            np.zeros(1, dtype=np.uint64),
            np.array([compiled.rows - 1], dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
        )
        middle = compiled.encode(
            np.zeros(1, dtype=np.uint64),
            np.array([compiled.rows // 2], dtype=np.uint64),
            np.zeros(1, dtype=np.uint64),
        )
        plan = planner.plan(np.concatenate([top, bottom, middle]))
        assert list(plan.valid) == [False, False, True]
        assert plan.planned == 1

    def test_matches_scalar_aim_semantics(self):
        """Planner and BeliefMapping.aim_row_neighbor agree on the
        believed bank and row of every aggressor (columns may differ)."""
        mapping = preset("No.4").mapping
        belief = _belief(mapping)
        planner = CompiledAggressorPlanner.from_belief(belief)
        rng = np.random.default_rng(7)
        victims = rng.integers(
            0, 1 << mapping.geometry.address_bits, 300, dtype=np.uint64
        )
        plan = planner.plan(victims)
        for index in range(300):
            victim = int(victims[index])
            scalar_above = belief.aim_row_neighbor(victim, -1)
            scalar_below = belief.aim_row_neighbor(victim, +1)
            if not plan.valid[index]:
                assert scalar_above is None or scalar_below is None
                continue
            assert scalar_above is not None and scalar_below is not None
            for scalar, planned in (
                (scalar_above, int(plan.above[index])),
                (scalar_below, int(plan.below[index])),
            ):
                assert belief.bank_of(scalar) == belief.bank_of(planned)
                assert belief.row_of(scalar) == belief.row_of(planned)

    def test_out_of_space_victims_marked_invalid(self):
        """Regression: the translate kernels read only the low
        ``address_bits`` of each lane, so a victim beyond the mapped
        address space aliases onto an in-space row. The valid mask must
        skip such lanes — the scalar path does — instead of planning
        aggressors around the aliased victim."""
        mapping = preset("No.2").mapping
        planner = CompiledAggressorPlanner.from_mapping(mapping)
        space = np.uint64(1 << mapping.geometry.address_bits)
        rng = np.random.default_rng(11)
        inside = rng.integers(0, space, 64, dtype=np.uint64)
        outside = inside | space
        plan = planner.plan(np.concatenate([inside, outside]))
        assert not plan.valid[64:].any()
        # The same lanes without the high bit stay plannable (mid rows).
        assert plan.valid[:64].sum() > 48

    def test_singular_belief_raises_at_construction(self):
        belief = BeliefMapping(
            address_bits=6,
            bank_functions=(0b11, 0b11),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        with pytest.raises(SingularMappingError):
            CompiledAggressorPlanner.from_belief(belief)


def _assert_scalar_parity(mapping, sample_seed: int, samples: int = 48):
    """Planner and scalar aim path must agree lane for lane on ``mapping``.

    Covers the three regimes where they historically could diverge:
    boundary rows (0, 1, rows-2, rows-1), random mid-space victims, and
    victims outside the mapped address space (which the translate
    kernels would otherwise alias onto in-space rows).
    """
    belief = BeliefMapping.from_mapping(mapping)
    planner = CompiledAggressorPlanner.from_mapping(mapping)
    compiled = mapping.compiled
    space = np.uint64(1 << mapping.geometry.address_bits)
    rng = np.random.default_rng(sample_seed)

    boundary_rows = np.array(
        [0, 1, compiled.rows - 2, compiled.rows - 1], dtype=np.uint64
    )
    boundary = compiled.encode(
        np.zeros(4, dtype=np.uint64), boundary_rows, np.zeros(4, dtype=np.uint64)
    )
    middle = rng.integers(0, space, samples, dtype=np.uint64)
    outside = middle[: samples // 4] | space
    victims = np.concatenate([boundary, middle, outside])

    plan = planner.plan(victims)
    for index in range(victims.size):
        victim = int(victims[index])
        above = belief.aim_row_neighbor(victim, -1)
        below = belief.aim_row_neighbor(victim, +1)
        scalar_plans = above is not None and below is not None
        assert scalar_plans == bool(plan.valid[index]), (
            f"victim 0x{victim:x}: scalar "
            f"{'plans' if scalar_plans else 'skips'}, planner disagrees"
        )
        if not scalar_plans:
            continue
        for scalar, planned in (
            (above, int(plan.above[index])),
            (below, int(plan.below[index])),
        ):
            assert belief.bank_of(scalar) == belief.bank_of(planned)
            assert belief.row_of(scalar) == belief.row_of(planned)


class TestScalarParityRegression:
    """Satellite regression: the batch planner must agree with
    ``aim_row_neighbor`` on every preset and across random mappings —
    including out-of-space victims, where the pre-fix planner aimed at
    aliased addresses the scalar path refuses."""

    @pytest.mark.parametrize("name", preset_names())
    def test_parity_on_preset(self, name):
        _assert_scalar_parity(preset(name).mapping, sample_seed=17)

    @pytest.mark.parametrize("case", range(20))
    def test_parity_on_random_mapping(self, case):
        rng = np.random.default_rng(1000 + case)
        _assert_scalar_parity(random_mapping(rng), sample_seed=case)


class TestAttackIntegration:
    def test_planner_path_hammers_effectively(self):
        machine_preset = preset("No.4")
        machine = SimulatedMachine.from_preset(machine_preset, seed=3)
        attack = DoubleSidedAttack(
            machine,
            vulnerability=machine_preset.hammer_vulnerability,
            config=HammerConfig(duration_seconds=20.0),
        )
        belief = _belief(machine_preset.mapping)
        planner = CompiledAggressorPlanner.from_belief(belief)
        report = attack.run(belief, seed=1, planner=planner)
        # A correct belief aims true double-sided layouts whichever
        # column the planner picked.
        assert report.trials > 0
        assert report.aim_accuracy > 0.9

    def test_default_path_unchanged_by_planner_arg(self):
        """run() without a planner must produce the historical result —
        same machine, seed and belief give identical reports."""
        machine_preset = preset("No.4")
        belief = _belief(machine_preset.mapping)
        config = HammerConfig(duration_seconds=10.0)

        def run_once():
            machine = SimulatedMachine.from_preset(machine_preset, seed=3)
            attack = DoubleSidedAttack(
                machine,
                vulnerability=machine_preset.hammer_vulnerability,
                config=config,
            )
            return attack.run(belief, seed=1)

        assert run_once() == run_once()
