"""Property tests for repro.analysis.arrays.

``sorted_unique`` replaced ``np.unique`` on the allocator/partition hot
paths for speed; these tests pin that the replacement is *exactly*
``np.unique`` on every input shape that matters (empty, single,
duplicate-heavy, already sorted, reversed).
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.arrays import isin_sorted, sorted_unique


class TestSortedUnique:
    def test_empty(self):
        result = sorted_unique(np.array([], dtype=np.uint64))
        assert result.size == 0
        assert result.dtype == np.uint64

    def test_single(self):
        np.testing.assert_array_equal(
            sorted_unique(np.array([7], dtype=np.uint64)), [7]
        )

    def test_all_duplicates(self):
        np.testing.assert_array_equal(
            sorted_unique(np.full(100, 42, dtype=np.uint64)), [42]
        )

    def test_reverse_sorted(self):
        values = np.arange(50, dtype=np.uint64)[::-1]
        np.testing.assert_array_equal(sorted_unique(values), np.arange(50))

    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=200)
    )
    def test_matches_np_unique(self, raw):
        values = np.array(raw, dtype=np.uint64)
        np.testing.assert_array_equal(sorted_unique(values), np.unique(values))

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=100))
    def test_matches_np_unique_signed(self, raw):
        values = np.array(raw, dtype=np.int64)
        result = sorted_unique(values)
        np.testing.assert_array_equal(result, np.unique(values))
        assert result.dtype == values.dtype

    def test_does_not_mutate_input(self):
        values = np.array([3, 1, 2, 1], dtype=np.uint64)
        sorted_unique(values)
        np.testing.assert_array_equal(values, [3, 1, 2, 1])


class TestIsinSorted:
    def test_empty_table_is_all_false(self):
        values = np.array([1, 2, 3], dtype=np.uint64)
        result = isin_sorted(values, np.array([], dtype=np.uint64))
        np.testing.assert_array_equal(result, [False, False, False])

    def test_empty_values(self):
        result = isin_sorted(
            np.array([], dtype=np.uint64), np.array([1, 2], dtype=np.uint64)
        )
        assert result.size == 0
        assert result.dtype == bool

    def test_beyond_table_end(self):
        # searchsorted lands past the last slot for values above the
        # table's maximum; the clamp must not turn that into a hit.
        table = np.array([10, 20, 30], dtype=np.uint64)
        values = np.array([30, 31, 2**63], dtype=np.uint64)
        np.testing.assert_array_equal(
            isin_sorted(values, table), [True, False, False]
        )

    def test_duplicate_table_entries(self):
        table = np.array([5, 5, 5, 9], dtype=np.uint64)
        values = np.array([4, 5, 9, 10], dtype=np.uint64)
        np.testing.assert_array_equal(
            isin_sorted(values, table), np.isin(values, table)
        )

    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=200),
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=200),
    )
    def test_matches_np_isin_on_sorted_tables(self, raw_values, raw_table):
        values = np.array(raw_values, dtype=np.uint64)
        table = np.sort(np.array(raw_table, dtype=np.uint64))
        np.testing.assert_array_equal(
            isin_sorted(values, table), np.isin(values, table)
        )
