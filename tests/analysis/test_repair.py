"""Tests for kernel repair (probe-mask compensation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bits import bits_of_mask, mask_of_bits, parity
from repro.analysis.repair import kernel_repair
from repro.dram.presets import preset


def in_kernel(mask, functions):
    return all(parity(mask & f) == 0 for f in functions)


class TestKernelRepair:
    def test_no_repair_needed(self):
        functions = [mask_of_bits([14, 18])]
        assert kernel_repair(mask_of_bits([14, 18]), functions, [7, 8]) == 0

    def test_paper_no2_case(self):
        """The No.2 fine-grained probe: candidate {14,18} upsets the 7-bit
        hash via bit 18; the lowest single repair bit is 7."""
        mapping = preset("No.2").mapping
        candidate = mask_of_bits([14, 18])
        others = [f for f in mapping.bank_functions if f != candidate]
        available = sorted(
            {
                b
                for f in others
                for b in bits_of_mask(f)
                if b not in (14, 18) and b not in mapping.row_bits
            }
        )
        repair = kernel_repair(candidate, others, available)
        assert repair == 1 << 7
        assert in_kernel(candidate | repair, mapping.bank_functions)

    def test_prefers_lowest_single_bit(self):
        functions = [mask_of_bits([5, 9, 11])]
        repair = kernel_repair(mask_of_bits([9]), functions, [5, 11])
        assert repair == 1 << 5

    def test_pair_repair(self):
        """Target syndrome reachable only by two bits."""
        f1 = mask_of_bits([3, 10])
        f2 = mask_of_bits([4, 10])
        candidate = mask_of_bits([10, 20])
        # Flipping 10 upsets both; bits 3 (fixes f1) and 4 (fixes f2).
        repair = kernel_repair(candidate, [f1, f2], [3, 4])
        assert repair == (1 << 3) | (1 << 4)
        assert in_kernel(candidate | repair, [f1, f2])

    def test_unsolvable(self):
        functions = [mask_of_bits([9, 30])]
        assert kernel_repair(mask_of_bits([9]), functions, [2]) is None

    def test_overlapping_available_rejected(self):
        with pytest.raises(ValueError, match="overlaps"):
            kernel_repair(mask_of_bits([9]), [mask_of_bits([9, 5])], [9])

    @given(st.data())
    @settings(max_examples=60)
    def test_repair_lands_in_kernel(self, data):
        functions = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=2**20 - 1), min_size=1, max_size=4
            )
        )
        candidate_bits = data.draw(
            st.sets(st.integers(min_value=0, max_value=19), min_size=1, max_size=3)
        )
        candidate = mask_of_bits(candidate_bits)
        available = [b for b in range(20) if b not in candidate_bits]
        repair = kernel_repair(candidate, functions, available)
        if repair is not None:
            assert repair & candidate == 0
            assert in_kernel(candidate | repair, functions)
