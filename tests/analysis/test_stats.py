"""Unit tests for repro.analysis.stats (latency threshold calibration)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import LatencyThreshold, find_threshold, median_of, trimmed_mean


class TestTrimmedMean:
    def test_no_trim_is_mean(self):
        data = np.array([1.0, 2.0, 3.0])
        assert trimmed_mean(data, 0.0) == pytest.approx(2.0)

    def test_trims_outliers(self):
        data = np.array([10.0] * 18 + [1000.0, 0.0])
        assert trimmed_mean(data, 0.1) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.array([]))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.array([1.0]), 0.5)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=0.49),
    )
    def test_within_data_range(self, values, fraction):
        result = trimmed_mean(np.array(values), fraction)
        tolerance = 1e-9 * max(values)
        assert min(values) - tolerance <= result <= max(values) + tolerance


class TestMedian:
    def test_median(self):
        assert median_of(np.array([1.0, 9.0, 2.0])) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_of(np.array([]))


def _bimodal_sample(rng, fast, slow, n=400, sigma=2.0, fast_fraction=0.7):
    n_fast = int(n * fast_fraction)
    return np.concatenate(
        [
            rng.normal(fast, sigma, n_fast),
            rng.normal(slow, sigma, n - n_fast),
        ]
    )


class TestFindThreshold:
    def test_clean_bimodal(self):
        rng = np.random.default_rng(0)
        sample = _bimodal_sample(rng, fast=80.0, slow=110.0)
        threshold = find_threshold(sample)
        assert 85.0 < threshold.cutoff < 105.0
        assert threshold.fast_mode == pytest.approx(80.0, abs=3.0)
        assert threshold.slow_mode == pytest.approx(110.0, abs=3.0)

    def test_classification_accuracy(self):
        rng = np.random.default_rng(1)
        fast = rng.normal(80.0, 2.0, 500)
        slow = rng.normal(110.0, 2.0, 500)
        threshold = find_threshold(np.concatenate([fast, slow]))
        assert (~threshold.classify(fast)).mean() > 0.99
        assert threshold.classify(slow).mean() > 0.99

    def test_unimodal_rejected(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(80.0, 1.0, 400)
        with pytest.raises(ValueError, match="unimodal"):
            find_threshold(sample)

    def test_tiny_sample_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            find_threshold(np.array([1.0, 2.0]))

    def test_unbalanced_mixture_still_splits(self):
        rng = np.random.default_rng(3)
        sample = _bimodal_sample(rng, fast=80.0, slow=112.0, fast_fraction=15 / 16)
        threshold = find_threshold(sample)
        assert 85.0 < threshold.cutoff < 108.0

    def test_is_slow_scalar(self):
        threshold = LatencyThreshold(cutoff=95.0, fast_mode=80.0, slow_mode=110.0, separation=0.375)
        assert threshold.is_slow(96.0)
        assert not threshold.is_slow(94.0)

    @given(st.integers(min_value=0, max_value=100))
    def test_separation_positive_for_separated_modes(self, seed):
        rng = np.random.default_rng(seed)
        sample = _bimodal_sample(rng, fast=80.0, slow=110.0)
        threshold = find_threshold(sample)
        assert threshold.separation > 0.08
        assert threshold.fast_mode < threshold.cutoff < threshold.slow_mode
