"""Tests for the ASCII latency histogram."""

import numpy as np
import pytest

from repro.analysis.histogram import build_histogram, render_histogram


@pytest.fixture
def bimodal():
    rng = np.random.default_rng(0)
    return np.concatenate([rng.normal(80, 2, 900), rng.normal(110, 2, 100)])


class TestBuild:
    def test_counts_sum_to_samples(self, bimodal):
        histogram = build_histogram(bimodal, bins=30)
        assert histogram.total == bimodal.size

    def test_mode_is_fast_hump(self, bimodal):
        histogram = build_histogram(bimodal, bins=30)
        mode_center = (
            histogram.edges[histogram.mode_bin()]
            + histogram.edges[histogram.mode_bin() + 1]
        ) / 2
        assert 75 < mode_center < 85

    def test_spikes_clipped(self):
        data = np.concatenate([np.full(990, 80.0), np.full(10, 5000.0)])
        histogram = build_histogram(data, bins=20, clip_percentile=98.0)
        assert histogram.edges[-1] < 200
        assert histogram.total == 1000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_histogram(np.array([]))

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            build_histogram(np.array([1.0, 2.0]), bins=1)

    def test_constant_sample(self):
        histogram = build_histogram(np.full(50, 80.0), bins=5)
        assert histogram.total == 50


class TestRender:
    def test_bar_lengths_proportional(self, bimodal):
        histogram = build_histogram(bimodal, bins=10)
        text = render_histogram(histogram, width=20)
        lines = text.splitlines()
        assert len(lines) == 10
        longest = max(lines, key=lambda line: line.count("#"))
        assert longest.count("#") == 20

    def test_cutoff_marker(self, bimodal):
        histogram = build_histogram(bimodal, bins=10)
        text = render_histogram(histogram, cutoff=95.0)
        assert "<- cutoff 95.0 ns" in text
        lines = text.splitlines()
        marker = next(i for i, line in enumerate(lines) if "cutoff" in line)
        assert 0 < marker < len(lines) - 1

    def test_cutoff_above_range_appended(self, bimodal):
        histogram = build_histogram(bimodal, bins=10)
        text = render_histogram(histogram, cutoff=10_000.0)
        assert text.splitlines()[-1].endswith("10000.0 ns")
