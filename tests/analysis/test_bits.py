"""Unit and property tests for repro.analysis.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import bits


class TestBit:
    def test_bit_zero(self):
        assert bits.bit(0) == 1

    def test_bit_six(self):
        assert bits.bit(6) == 64

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            bits.bit(-1)


class TestMaskConversion:
    def test_bits_of_mask_empty(self):
        assert bits.bits_of_mask(0) == ()

    def test_bits_of_mask_example(self):
        assert bits.bits_of_mask(0b10010) == (1, 4)

    def test_mask_of_bits_example(self):
        assert bits.mask_of_bits([1, 4]) == 0b10010

    def test_mask_of_bits_empty(self):
        assert bits.mask_of_bits([]) == 0

    def test_mask_of_bits_duplicates_idempotent(self):
        assert bits.mask_of_bits([3, 3, 3]) == 8

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            bits.bits_of_mask(-5)

    @given(st.sets(st.integers(min_value=0, max_value=63)))
    def test_roundtrip(self, positions):
        mask = bits.mask_of_bits(positions)
        assert set(bits.bits_of_mask(mask)) == positions

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_from_mask(self, mask):
        assert bits.mask_of_bits(bits.bits_of_mask(mask)) == mask


class TestParity:
    def test_parity_even(self):
        assert bits.parity(0b1100) == 0

    def test_parity_odd(self):
        assert bits.parity(0b1110) == 1

    def test_parity_zero(self):
        assert bits.parity(0) == 0

    @given(st.integers(min_value=0, max_value=2**70))
    def test_parity_matches_popcount(self, value):
        assert bits.parity(value) == bits.popcount(value) % 2

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_parity_is_linear(self, a, b):
        """parity(a ^ b) == parity(a) ^ parity(b) — the property bank hash
        analysis relies on."""
        assert bits.parity(a ^ b) == bits.parity(a) ^ bits.parity(b)


class TestParityArray:
    def test_matches_scalar(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**63, size=256, dtype=np.uint64)
        mask = bits.mask_of_bits([3, 7, 19, 40])
        expected = np.array([bits.parity(int(v) & mask) for v in values], dtype=np.uint8)
        np.testing.assert_array_equal(bits.parity_array(values, mask), expected)

    def test_zero_mask_gives_zero(self):
        values = np.arange(100, dtype=np.uint64)
        assert not bits.parity_array(values, 0).any()

    def test_single_bit_mask_extracts_bit(self):
        values = np.arange(16, dtype=np.uint64)
        np.testing.assert_array_equal(
            bits.parity_array(values, 0b10), ((values >> 1) & 1).astype(np.uint8)
        )


class TestExtractDeposit:
    def test_extract_example(self):
        assert bits.extract_bits(0b101000, [3, 5]) == 0b11

    def test_deposit_example(self):
        assert bits.deposit_bits(0b11, [3, 5]) == 0b101000

    def test_extract_order_matters(self):
        assert bits.extract_bits(0b100, [2, 0]) == 0b01
        assert bits.extract_bits(0b100, [0, 2]) == 0b10

    @given(
        st.integers(min_value=0, max_value=2**20 - 1),
        st.lists(st.integers(min_value=0, max_value=40), unique=True, max_size=20),
    )
    def test_deposit_then_extract_roundtrips(self, value, positions):
        value &= (1 << len(positions)) - 1
        assert bits.extract_bits(bits.deposit_bits(value, positions), positions) == value

    @given(
        st.integers(min_value=0, max_value=2**40 - 1),
        st.lists(st.integers(min_value=0, max_value=39), unique=True, min_size=1),
    )
    def test_extract_ignores_other_bits(self, value, positions):
        mask = bits.mask_of_bits(positions)
        assert bits.extract_bits(value, positions) == bits.extract_bits(value & mask, positions)


class TestLowHighBit:
    def test_lowest(self):
        assert bits.lowest_bit(0b10100) == 2

    def test_highest(self):
        assert bits.highest_bit(0b10100) == 4

    def test_single_bit(self):
        assert bits.lowest_bit(64) == bits.highest_bit(64) == 6

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bits.lowest_bit(0)
        with pytest.raises(ValueError):
            bits.highest_bit(0)


class TestSubmasks:
    def test_full_enumeration(self):
        mask = 0b1010
        assert sorted(bits.iter_submasks(mask)) == [0b0010, 0b1000, 0b1010]

    def test_zero_mask_yields_nothing(self):
        assert list(bits.iter_submasks(0)) == []

    @given(st.integers(min_value=1, max_value=2**12 - 1))
    def test_count_is_two_to_popcount_minus_one(self, mask):
        submasks = list(bits.iter_submasks(mask))
        assert len(submasks) == 2 ** bits.popcount(mask) - 1
        assert len(set(submasks)) == len(submasks)
        assert all(sub & mask == sub for sub in submasks)


class TestFormatMask:
    def test_paper_style(self):
        assert bits.format_mask(bits.mask_of_bits([14, 17])) == "(14, 17)"

    def test_single_bit(self):
        assert bits.format_mask(64) == "(6)"


uint64s = st.integers(min_value=0, max_value=2**64 - 1)


class TestParityTable16:
    def test_matches_scalar_parity(self):
        table = bits.parity_table_16()
        assert table.shape == (1 << bits.SLICE_BITS,)
        assert table.dtype == np.uint8
        for value in (0, 1, 0b11, 0x8000, 0xFFFF, 0x1234):
            assert table[value] == bits.parity(value)

    def test_cached_instance(self):
        assert bits.parity_table_16() is bits.parity_table_16()


class TestPackedParityTables:
    """GF(2) equality of the sliced-LUT decode with the popcount parity —
    the property the acceptance criteria require."""

    def test_empty_masks(self):
        assert bits.packed_parity_tables([]) == ()
        assert bits.gather_xor(np.arange(4, dtype=np.uint64), ()) is None

    @given(
        st.lists(uint64s.filter(lambda m: m > 0), min_size=1, max_size=12),
        st.lists(uint64s, min_size=1, max_size=64),
    )
    def test_gather_xor_equals_popcount_parity(self, masks, raw_addrs):
        addrs = np.array(raw_addrs, dtype=np.uint64)
        packed = bits.gather_xor(addrs, bits.packed_parity_tables(masks))
        for position, mask in enumerate(masks):
            expected = bits.parity_array(addrs, mask)
            np.testing.assert_array_equal(
                ((packed >> position) & 1).astype(np.uint8), expected
            )

    def test_packed_dtype_grows_with_mask_count(self):
        addrs = np.arange(8, dtype=np.uint64)
        for count, dtype in ((8, np.uint8), (16, np.uint16), (17, np.uint32)):
            masks = [1 << index for index in range(count)]
            packed = bits.gather_xor(addrs, bits.packed_parity_tables(masks))
            assert packed.dtype == dtype


class TestExtractTables:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=63),
            unique=True,
            min_size=1,
            max_size=20,
        ),
        st.lists(uint64s, min_size=1, max_size=64),
    )
    def test_gather_xor_equals_scalar_extract(self, positions, raw_addrs):
        addrs = np.array(raw_addrs, dtype=np.uint64)
        gathered = bits.gather_xor(addrs, bits.extract_tables(positions))
        expected = np.array(
            [bits.extract_bits(int(value), positions) for value in addrs],
            dtype=np.uint64,
        )
        np.testing.assert_array_equal(gathered, expected)

    def test_empty_positions(self):
        assert bits.extract_tables([]) == ()
