"""Unit and property tests for repro.analysis.gf2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import gf2
from repro.analysis.bits import mask_of_bits

masks = st.integers(min_value=0, max_value=2**34 - 1)
mask_lists = st.lists(masks, max_size=10)


class TestRowEchelon:
    def test_empty(self):
        assert gf2.row_echelon([]) == []

    def test_zero_dropped(self):
        assert gf2.row_echelon([0, 0]) == []

    def test_duplicates_collapse(self):
        assert gf2.row_echelon([0b101, 0b101]) == [0b101]

    def test_leading_bits_unique(self):
        basis = gf2.row_echelon([0b110, 0b011, 0b101])
        leads = [m.bit_length() for m in basis]
        assert len(set(leads)) == len(leads)

    @given(mask_lists)
    def test_span_preserved(self, ms):
        basis = gf2.row_echelon(ms)
        for m in ms:
            assert gf2.in_span(m, basis)
        for b in basis:
            assert gf2.in_span(b, ms)


class TestRank:
    def test_paper_example(self):
        """(14,18), (15,19) and (14,15,18,19): the third is dependent."""
        f1 = mask_of_bits([14, 18])
        f2 = mask_of_bits([15, 19])
        f3 = mask_of_bits([14, 15, 18, 19])
        assert gf2.rank([f1, f2, f3]) == 2

    def test_independent_set(self):
        assert gf2.rank([0b001, 0b010, 0b100]) == 3

    @given(mask_lists)
    def test_rank_bounds(self, ms):
        r = gf2.rank(ms)
        assert 0 <= r <= len(ms)
        assert r <= max((m.bit_length() for m in ms), default=0)

    @given(mask_lists, masks)
    def test_rank_monotone(self, ms, extra):
        assert gf2.rank(ms) <= gf2.rank(ms + [extra]) <= gf2.rank(ms) + 1


class TestInSpan:
    def test_zero_always_in_span(self):
        assert gf2.in_span(0, [])
        assert gf2.in_span(0, [0b11])

    def test_simple_combination(self):
        assert gf2.in_span(0b110, [0b100, 0b010])

    def test_not_in_span(self):
        assert not gf2.in_span(0b001, [0b100, 0b010])

    @given(mask_lists, st.integers(min_value=0, max_value=1023))
    def test_xor_combinations_are_in_span(self, ms, combo_bits):
        value = 0
        for index, m in enumerate(ms):
            if combo_bits >> index & 1:
                value ^= m
        assert gf2.in_span(value, ms)


class TestIsIndependent:
    def test_empty_is_independent(self):
        assert gf2.is_independent([])

    def test_zero_is_dependent(self):
        assert not gf2.is_independent([0])

    def test_duplicate_is_dependent(self):
        assert not gf2.is_independent([0b11, 0b11])


class TestReduceToBasis:
    def test_priority_order_kept(self):
        """The paper's redundancy rule: fewer-bit functions win; the linear
        combination is dropped."""
        f1 = mask_of_bits([14, 18])
        f2 = mask_of_bits([15, 19])
        f3 = mask_of_bits([14, 15, 18, 19])
        assert gf2.reduce_to_basis([f1, f2, f3]) == [f1, f2]

    def test_order_determines_survivors(self):
        f1 = mask_of_bits([14, 18])
        f2 = mask_of_bits([15, 19])
        f3 = mask_of_bits([14, 15, 18, 19])
        assert gf2.reduce_to_basis([f3, f1, f2]) == [f3, f1]

    def test_zeros_dropped(self):
        assert gf2.reduce_to_basis([0, 0b1]) == [0b1]

    @given(mask_lists)
    def test_result_is_independent_and_spans(self, ms):
        basis = gf2.reduce_to_basis(ms)
        assert gf2.is_independent(basis)
        assert gf2.span_equal(basis, ms)


class TestSpanEqual:
    def test_different_bases_same_span(self):
        assert gf2.span_equal([0b01, 0b10], [0b11, 0b01])

    def test_unequal(self):
        assert not gf2.span_equal([0b01], [0b10])

    def test_subspace_not_equal(self):
        assert not gf2.span_equal([0b01], [0b01, 0b10])

    @given(mask_lists)
    def test_reflexive(self, ms):
        assert gf2.span_equal(ms, ms)

    @given(mask_lists, st.randoms(use_true_random=False))
    def test_invariant_under_shuffle_and_xor(self, ms, rnd):
        if not ms:
            return
        mixed = list(ms)
        rnd.shuffle(mixed)
        mixed[0] ^= mixed[-1]
        mixed.append(mixed[0] ^ mixed[-1])
        assert gf2.span_equal(ms, mixed + ms)


class TestSpan:
    def test_two_generators(self):
        assert gf2.span([0b01, 0b10]) == [0b01, 0b10, 0b11]

    def test_empty(self):
        assert gf2.span([]) == []

    @given(st.lists(masks, max_size=6))
    def test_size_is_power_of_two_minus_one(self, ms):
        elements = gf2.span(ms)
        assert len(elements) == 2 ** gf2.rank(ms) - 1


class TestSolveXor:
    def test_finds_combination(self):
        f1 = mask_of_bits([14, 18])
        f2 = mask_of_bits([15, 19])
        target = mask_of_bits([14, 15, 18, 19])
        subset = gf2.solve_xor([f1, f2], target)
        assert subset is not None
        acc = 0
        for m in subset:
            acc ^= m
        assert acc == target

    def test_unsolvable(self):
        assert gf2.solve_xor([0b100, 0b010], 0b001) is None

    def test_zero_target_empty_subset(self):
        assert gf2.solve_xor([0b100], 0) == []

    @given(mask_lists, st.integers(min_value=0, max_value=1023))
    def test_solution_xors_to_target(self, ms, combo_bits):
        target = 0
        for index, m in enumerate(ms):
            if combo_bits >> index & 1:
                target ^= m
        subset = gf2.solve_xor(ms, target)
        assert subset is not None
        acc = 0
        for m in subset:
            acc ^= m
        assert acc == target


class TestValidation:
    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            gf2.row_echelon([-1])
        with pytest.raises(ValueError):
            gf2.in_span(-1, [1])


class TestNullspace:
    def test_simple(self):
        # Row 0b011 -> nullspace spanned by vectors orthogonal to it.
        vectors = gf2.nullspace_basis([0b011], 3)
        assert len(vectors) == 2
        for v in vectors:
            assert bin(v & 0b011).count("1") % 2 == 0

    def test_empty_rows_full_space(self):
        vectors = gf2.nullspace_basis([], 4)
        assert gf2.rank(vectors) == 4

    def test_full_rank_rows_trivial_nullspace(self):
        assert gf2.nullspace_basis([0b01, 0b10], 2) == []

    def test_width_validation(self):
        with pytest.raises(ValueError):
            gf2.nullspace_basis([0b100], 2)
        with pytest.raises(ValueError):
            gf2.nullspace_basis([], -1)

    @given(
        st.integers(min_value=1, max_value=14).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.lists(st.integers(min_value=0, max_value=(1 << w) - 1), max_size=10),
            )
        )
    )
    def test_dimension_theorem_and_orthogonality(self, width_rows):
        width, rows = width_rows
        vectors = gf2.nullspace_basis(rows, width)
        assert len(vectors) == width - gf2.rank(rows)
        assert gf2.is_independent(vectors) or not vectors
        for v in vectors:
            for row in rows:
                assert bin(v & row).count("1") % 2 == 0

    def test_recovers_bank_function_space(self):
        """Differences within same-bank piles of the No.1 hash have the
        4 true functions as their nullspace (projected onto the bank bits)."""
        from repro.analysis.bits import extract_bits
        from repro.dram.presets import preset

        mapping = preset("No.1").mapping
        bank_bits = [6, 14, 15, 16, 17, 18, 19]
        width = len(bank_bits)
        # Enumerate all 2^7 combinations of the bank bits; group by bank.
        from repro.analysis.bits import deposit_bits

        piles = {}
        for value in range(1 << width):
            addr = deposit_bits(value, bank_bits)
            piles.setdefault(mapping.bank_of(addr), []).append(addr)
        diffs = []
        for members in piles.values():
            diffs.extend(extract_bits(a ^ members[0], bank_bits) for a in members[1:])
        vectors = gf2.nullspace_basis(diffs, width)
        recovered = [deposit_bits(v, bank_bits) for v in vectors]
        assert gf2.span_equal(recovered, mapping.bank_functions)


class TestInvert:
    def test_identity(self):
        rows = [1 << i for i in range(8)]
        assert gf2.invert(rows) == rows

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gf2.invert([0b1, 0b10], width=3)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError):
            gf2.invert([0b100, 0b1], width=2)

    def test_singular_returns_none(self):
        assert gf2.invert([0b11, 0b11]) is None
        assert gf2.invert([0b0, 0b1]) is None

    def test_known_inverse(self):
        # [[1,1],[0,1]] is its own inverse over GF(2).
        rows = [0b11, 0b10]
        assert gf2.invert(rows) == [0b11, 0b10]

    @staticmethod
    def _apply(rows, x):
        y = 0
        for i, mask in enumerate(rows):
            y |= (bin(x & mask).count("1") % 2) << i
        return y

    @given(
        st.integers(min_value=1, max_value=10).flatmap(
            lambda w: st.lists(
                st.integers(min_value=0, max_value=(1 << w) - 1),
                min_size=w,
                max_size=w,
            )
        )
    )
    def test_inverse_roundtrips_or_rank_deficient(self, rows):
        width = len(rows)
        inverse = gf2.invert(rows)
        if inverse is None:
            assert gf2.rank(rows) < width
            return
        assert gf2.rank(rows) == width
        for position in range(width):
            basis = 1 << position
            assert self._apply(inverse, self._apply(rows, basis)) == basis
            assert self._apply(rows, self._apply(inverse, basis)) == basis
