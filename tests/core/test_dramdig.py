"""End-to-end tests of the DRAMDig pipeline — the paper's core claims."""

import pytest

from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.partition import PartitionConfig
from repro.core.probe import ProbeConfig
from repro.dram.presets import PRESETS, preset, preset_names
from repro.machine.machine import SimulatedMachine

FAST = DramDigConfig(probe=ProbeConfig(rounds=200))


@pytest.mark.parametrize("name", preset_names())
def test_recovers_every_machine(name):
    """Generic: DRAMDig uncovers an equivalent mapping on all 9 settings."""
    machine = SimulatedMachine.from_preset(preset(name), seed=1)
    result = DramDig(FAST).run(machine)
    assert result.mapping.equivalent_to(preset(name).mapping), result.mapping.describe()


@pytest.mark.parametrize("name", ["No.1", "No.6"])
def test_deterministic_across_machine_noise(name):
    """Deterministic: different machine seeds (different noise streams and
    buffer placement) yield the *same* mapping."""
    outcomes = set()
    for seed in (1, 2, 3):
        machine = SimulatedMachine.from_preset(preset(name), seed=seed)
        result = DramDig(FAST).run(machine)
        outcomes.add(
            (
                tuple(sorted(result.mapping.bank_functions)),
                result.mapping.row_bits,
                result.mapping.column_bits,
            )
        )
    assert len(outcomes) == 1


def test_efficient_minutes_not_hours():
    """Efficient: every machine finishes within the paper's worst case
    (~17 minutes of simulated time)."""
    for name in preset_names():
        machine = SimulatedMachine.from_preset(preset(name), seed=1)
        result = DramDig().run(machine)
        assert result.total_seconds < 18 * 60, name


def test_pool_size_drives_partition_cost():
    """Section IV-B: the partition phase dominates and scales with the
    selected pool (No.6 picks ~16k addresses, No.8 only hundreds)."""
    big = SimulatedMachine.from_preset(preset("No.6"), seed=1)
    small = SimulatedMachine.from_preset(preset("No.8"), seed=1)
    result_big = DramDig().run(big)
    result_small = DramDig().run(small)
    assert result_big.pool_size > 50 * result_small.pool_size
    assert result_big.phase_seconds["partition"] > 10 * result_small.phase_seconds["partition"]
    assert result_big.phase_seconds["partition"] > max(
        seconds
        for phase, seconds in result_big.phase_seconds.items()
        if phase != "partition"
    )


def test_noisy_machines_recovered_with_retries():
    """The noisy laptops (No.3, No.7) may need pipeline retries but still
    produce the correct deterministic mapping."""
    for name in ("No.3", "No.7"):
        machine = SimulatedMachine.from_preset(preset(name), seed=1)
        result = DramDig().run(machine)
        assert result.mapping.equivalent_to(preset(name).mapping)
        assert result.retries <= 2


def test_result_bookkeeping():
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
    result = DramDig(FAST).run(machine)
    assert result.pool_size == 128
    assert result.pile_count >= 13
    assert result.measurements > 0
    assert set(result.phase_seconds) == {
        "allocate",
        "calibrate",
        "coarse",
        "select",
        "partition",
        "functions",
        "fine",
    }
    assert result.total_seconds == pytest.approx(
        sum(result.phase_seconds.values()), rel=0.05
    )


def test_summary_renders():
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
    result = DramDig(FAST).run(machine)
    text = result.summary()
    assert "bank functions" in text
    assert "(14, 17)" in text


def test_enumerate_strategy_end_to_end():
    """The paper-literal Algorithm 3 formulation gives the same result."""
    config = DramDigConfig(probe=ProbeConfig(rounds=200), function_strategy="enumerate")
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
    result = DramDig(config).run(machine)
    assert result.mapping.equivalent_to(preset("No.1").mapping)


def test_config_validation():
    with pytest.raises(ValueError):
        DramDigConfig(alloc_fraction=0.0)
    with pytest.raises(ValueError):
        DramDigConfig(max_retries=-1)


def test_partition_tolerances_are_papers():
    config = DramDigConfig()
    assert config.partition == PartitionConfig(delta=0.2, per_threshold=0.85)


def test_mapping_validates_against_believed_geometry():
    """The recovered mapping's geometry comes from parsed dmidecode, so its
    bank/row/column bit budget is pinned before validation."""
    machine = SimulatedMachine.from_preset(preset("No.9"), seed=1)
    result = DramDig().run(machine)
    geometry = result.mapping.geometry
    truth = preset("No.9").geometry
    assert geometry.total_banks == truth.total_banks
    assert geometry.row_bytes == truth.row_bytes
