"""Tests for Step 1 (coarse-grained row & column detection)."""

import numpy as np
import pytest

from repro.analysis.bits import bits_of_mask
from repro.core.coarse import CoarseDetector, CoarseResult
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.dram.presets import PRESETS, preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


def run_coarse(name, seed=0, noise=None):
    machine = SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=noise or NoiseParams.noiseless()
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
    probe.calibrate(pages, np.random.default_rng(seed))
    detector = CoarseDetector(
        probe, pages, machine.ground_truth.geometry.address_bits,
        np.random.default_rng(seed),
    )
    return machine, detector.detect()


def expected_coarse(name) -> CoarseResult:
    """Derive the expected coarse classification from ground truth: a bit is
    coarse-row/column only if it does not feed any bank function."""
    mapping = PRESETS[name].mapping
    function_bits = {
        position for mask in mapping.bank_functions for position in bits_of_mask(mask)
    }
    rows = tuple(b for b in mapping.row_bits if b not in function_bits)
    columns = tuple(b for b in mapping.column_bits if b not in function_bits)
    banks = tuple(
        b
        for b in range(mapping.geometry.address_bits)
        if b not in rows and b not in columns
    )
    return CoarseResult(row_bits=rows, column_bits=columns, bank_bits=banks)


@pytest.mark.parametrize("name", ["No.1", "No.2", "No.6", "No.8"])
def test_coarse_matches_derivation(name):
    """On a noiseless machine Step 1 must classify every bit exactly as the
    shared-bit analysis predicts."""
    _, result = run_coarse(name)
    expected = expected_coarse(name)
    assert result.row_bits == expected.row_bits
    assert result.column_bits == expected.column_bits
    assert result.bank_bits == expected.bank_bits


def test_no1_concrete_values():
    """No.1: coarse rows are 20-32 (17-19 shared), columns are 0-5 and
    7-13, bank candidates are 6 and 14-19."""
    _, result = run_coarse("No.1")
    assert result.row_bits == tuple(range(20, 33))
    assert result.column_bits == tuple(range(0, 6)) + tuple(range(7, 14))
    assert result.bank_bits == (6,) + tuple(range(14, 20))


def test_all_bits_classified():
    _, result = run_coarse("No.4")
    assert result.classified() == 32


def test_coarse_with_noise_still_correct():
    """Default (quiet-machine) noise must not corrupt the voted scan."""
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=5)
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
    probe.calibrate(pages, np.random.default_rng(5))
    result = CoarseDetector(probe, pages, 33, np.random.default_rng(5)).detect()
    assert result == expected_coarse("No.1")


def test_votes_validation():
    machine = SimulatedMachine.from_preset(preset("No.1"))
    pages = machine.allocate(1 << 22, "contiguous")
    probe = LatencyProbe(machine)
    with pytest.raises(ValueError):
        CoarseDetector(probe, pages, 33, np.random.default_rng(0), votes=0)
