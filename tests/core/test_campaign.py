"""Campaign-planner bit-identity: batched probes ≡ step-by-step probes.

``ProbeConfig.batch_probes`` routes pending measurements through the
vectorized campaign paths (``measure_latency_pairs`` /
``measure_latency_sweeps``). The flag must be invisible in every
observable: measured latencies, verdicts, the machine's noise-RNG
stream, simulated clock charge and measurement counters. These tests
run the same workload on identically-seeded twin machines with the flag
on and off and require exact equality — including under realistic noise,
where any RNG-order slip would diverge immediately.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine


def _twin_probes(machine_name="No.1", seed=3, **config_kwargs):
    """Two identically-seeded (machine, probe) pairs, batched vs stepwise."""
    twins = []
    for batch_probes in (True, False):
        machine = SimulatedMachine.from_preset(preset(machine_name), seed=seed)
        config = ProbeConfig(
            rounds=100,
            calibration_pairs=768,
            batch_probes=batch_probes,
            **config_kwargs,
        )
        probe = LatencyProbe(machine, config)
        pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
        probe.calibrate(pages, np.random.default_rng(0))
        twins.append((machine, pages, probe))
    return twins


def _assert_machines_identical(machine_a, machine_b):
    assert machine_a.clock.elapsed_ns == machine_b.clock.elapsed_ns
    assert machine_a.stats.measurements == machine_b.stats.measurements
    assert machine_a.stats.accesses_timed == machine_b.stats.accesses_timed


class TestAreConflictsIdentity:
    def test_batched_equals_scalar_loop(self):
        (machine_b, pages_b, batched), (machine_s, _, stepwise) = _twin_probes()
        rng = np.random.default_rng(11)
        addresses = pages_b.sample_addresses(64, rng)
        pairs = [
            (int(addresses[i]), int(addresses[i + 1]))
            for i in range(0, 64, 2)
        ]
        assert batched.are_conflicts(pairs) == stepwise.are_conflicts(pairs)
        _assert_machines_identical(machine_b, machine_s)

    def test_small_campaigns_also_identical(self):
        # Below the batching crossover the batched probe falls back to the
        # scalar loop for speed; the verdicts and clock must not notice.
        (machine_b, pages_b, batched), (machine_s, _, stepwise) = _twin_probes(
            seed=5
        )
        addresses = pages_b.sample_addresses(8, np.random.default_rng(2))
        pairs = [
            (int(addresses[0]), int(addresses[1])),
            (int(addresses[2]), int(addresses[3])),
        ]
        assert batched.are_conflicts(pairs) == stepwise.are_conflicts(pairs)
        _assert_machines_identical(machine_b, machine_s)

    def test_empty_campaign(self):
        (_, _, batched), _ = _twin_probes()
        assert batched.are_conflicts([]) == []

    def test_drift_watch_forces_scalar_fallback(self):
        # With the adaptive drift watch armed the batched path must route
        # through the scalar loop (the watch interleaves reference
        # re-measurements between verdicts) — still identical to the
        # stepwise probe with the same watch settings.
        twins = _twin_probes(machine_name="No.3", seed=7, max_recalibrations=8)
        (machine_b, pages_b, batched), (machine_s, _, stepwise) = twins
        assert batched._watching_drift()
        addresses = pages_b.sample_addresses(40, np.random.default_rng(4))
        pairs = [
            (int(addresses[i]), int(addresses[i + 1]))
            for i in range(0, 40, 2)
        ]
        assert batched.are_conflicts(pairs) == stepwise.are_conflicts(pairs)
        _assert_machines_identical(machine_b, machine_s)


class TestConflictMaskIdentity:
    def test_batched_sweeps_equal_stepwise_batches(self):
        (machine_b, pages_b, batched), (machine_s, _, stepwise) = _twin_probes()
        rng = np.random.default_rng(21)
        others = pages_b.sample_addresses(512, rng)
        base = int(others[0])
        np.testing.assert_array_equal(
            batched.conflict_mask(base, others),
            stepwise.conflict_mask(base, others),
        )
        _assert_machines_identical(machine_b, machine_s)

    def test_identity_holds_under_drift_watch(self):
        twins = _twin_probes(machine_name="No.3", seed=13, max_recalibrations=8)
        (machine_b, pages_b, batched), (machine_s, _, stepwise) = twins
        rng = np.random.default_rng(22)
        others = pages_b.sample_addresses(256, rng)
        base = int(others[0])
        np.testing.assert_array_equal(
            batched.conflict_mask(base, others),
            stepwise.conflict_mask(base, others),
        )
        _assert_machines_identical(machine_b, machine_s)
        assert batched.drift_checks == stepwise.drift_checks


class TestWholeToolIdentity:
    @pytest.mark.parametrize("machine_name", ["No.1", "No.3"])
    def test_dramdig_batched_equals_stepwise(self, machine_name):
        """End-to-end: the recovered mapping, measurement count and
        simulated wall-clock are identical with the campaign planner on
        and off."""
        results = []
        for batch_probes in (True, False):
            config = DramDigConfig(probe=ProbeConfig(batch_probes=batch_probes))
            machine = SimulatedMachine.from_preset(preset(machine_name), seed=1)
            result = DramDig(config).run(machine)
            results.append(
                (
                    tuple(sorted(result.mapping.bank_functions)),
                    result.mapping.row_bits,
                    result.mapping.column_bits,
                    result.measurements,
                    result.total_seconds,
                )
            )
        assert results[0] == results[1]

    def test_resilient_config_identity(self):
        """The drift-watch fallback keeps the resilient (recovery-armed)
        configuration identical too."""
        results = []
        for batch_probes in (True, False):
            base = DramDigConfig.resilient()
            config = dataclasses.replace(
                base,
                probe=dataclasses.replace(base.probe, batch_probes=batch_probes),
            )
            machine = SimulatedMachine.from_preset(preset("No.3"), seed=2)
            result = DramDig(config).run(machine)
            results.append(
                (
                    tuple(sorted(result.mapping.bank_functions)),
                    result.measurements,
                    result.total_seconds,
                )
            )
        assert results[0] == results[1]
