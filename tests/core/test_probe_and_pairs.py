"""Unit tests for the latency probe and pair finding."""

import numpy as np
import pytest

from repro.core.pairs import find_pair, find_pairs
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.dram.errors import CalibrationError, SelectionError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


def make_machine(name="No.1", seed=0, noise=None):
    return SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=noise or NoiseParams.noiseless()
    )


@pytest.fixture
def calibrated():
    machine = make_machine()
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
    probe.calibrate(pages, np.random.default_rng(0))
    return machine, pages, probe


class TestProbeConfig:
    def test_defaults_are_papers(self):
        config = ProbeConfig()
        assert config.repeats == 2
        assert config.rounds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeConfig(rounds=0)
        with pytest.raises(ValueError):
            ProbeConfig(repeats=0)
        with pytest.raises(ValueError):
            ProbeConfig(calibration_pairs=2)


class TestCalibration:
    def test_threshold_between_modes(self, calibrated):
        _, _, probe = calibrated
        threshold = probe.require_threshold()
        assert threshold.fast_mode < threshold.cutoff < threshold.slow_mode

    def test_uncalibrated_raises(self):
        probe = LatencyProbe(make_machine())
        with pytest.raises(CalibrationError, match="before calibrate"):
            probe.require_threshold()

    def test_calibration_survives_spike_noise(self):
        """Reference-anchored calibration must survive the noisy-laptop
        profile that breaks Otsu."""
        machine = SimulatedMachine.from_preset(preset("No.3"), seed=0)
        pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
        probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
        threshold = probe.calibrate(pages, np.random.default_rng(1))
        # The true gap is ~27 ns on a ~90 ns base.
        assert 0.15 < threshold.separation < 0.6


class TestClassification:
    def test_is_conflict_true_pair(self, calibrated):
        machine, _, probe = calibrated
        mapping = machine.ground_truth
        base = 1 << 25
        conflict = mapping.encode(
            mapping.dram_address(base)._replace(row=mapping.row_of(base) ^ 1)
        )
        assert probe.is_conflict(base, conflict)

    def test_is_conflict_same_row(self, calibrated):
        _, _, probe = calibrated
        assert not probe.is_conflict(1 << 25, (1 << 25) + 32)

    def test_conflict_mask_matches_truth(self, calibrated):
        machine, pages, probe = calibrated
        rng = np.random.default_rng(2)
        others = pages.sample_addresses(256, rng)
        base = int(others[0])
        flags = probe.conflict_mask(base, others)
        mapping = machine.ground_truth
        for i in range(0, 256, 17):
            expected = mapping.is_row_conflict(base, int(others[i]))
            assert flags[i] == expected

    def test_measurement_counter(self, calibrated):
        machine, _, probe = calibrated
        before = probe.measurements_taken
        probe.is_conflict(0x2000000, 0x2000040)
        assert probe.measurements_taken == before + probe.config.repeats


class TestFindPair:
    def test_single_bit_low(self):
        machine = make_machine()
        pages = machine.allocate(1 << 24, "contiguous")
        base, partner = find_pair(pages, 1 << 3, np.random.default_rng(0))
        assert partner == base ^ 8
        assert pages.has_page(base) and pages.has_page(partner)

    def test_high_bit_needs_big_buffer(self):
        machine = make_machine()  # 8 GiB
        pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
        mask = 1 << 32
        base, partner = find_pair(pages, mask, np.random.default_rng(0))
        assert partner == base ^ mask
        assert pages.has_page(partner)

    def test_impossible_mask(self):
        machine = make_machine()
        pages = machine.allocate(1 << 22, "contiguous")  # 4 MiB only
        with pytest.raises(SelectionError, match="no allocated address pair"):
            find_pair(pages, 1 << 32, np.random.default_rng(0))

    def test_mask_validation(self):
        machine = make_machine()
        pages = machine.allocate(1 << 22, "contiguous")
        with pytest.raises(SelectionError):
            find_pair(pages, 0, np.random.default_rng(0))
        with pytest.raises(SelectionError, match="exceeds"):
            find_pair(pages, machine.total_bytes * 2, np.random.default_rng(0))

    def test_fragmented_fallback(self):
        """On sparse allocations random sampling can fail; the exhaustive
        sweep must still find an existing pair."""
        machine = make_machine()
        pages = machine.allocate(1 << 26, "sparse")
        # Some single-page-distance pair certainly exists in 16k pages.
        base, partner = find_pair(pages, 1 << 6, np.random.default_rng(0), sample_tries=2)
        assert pages.has_page(base) and pages.has_page(partner)

    def test_find_pairs_distinct(self):
        machine = make_machine()
        pages = machine.allocate(1 << 26, "contiguous")
        pairs = find_pairs(pages, 1 << 13, 3, np.random.default_rng(0))
        assert 1 <= len(pairs) <= 3
        bases = [base for base, _ in pairs]
        assert len(set(bases)) == len(bases)

    def test_find_pairs_count_validation(self):
        machine = make_machine()
        pages = machine.allocate(1 << 22, "contiguous")
        with pytest.raises(SelectionError):
            find_pairs(pages, 8, 0, np.random.default_rng(0))
