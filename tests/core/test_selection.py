"""Tests for Algorithm 1 (physical-address selection)."""

import numpy as np
import pytest

from repro.analysis.bits import mask_of_bits
from repro.core.selection import select_addresses
from repro.dram.errors import SelectionError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

# Coarse bank-bit sets per machine, derived from Table II (bits feeding any
# bank function).
BANK_BITS = {
    "No.1": (6, 14, 15, 16, 17, 18, 19),
    "No.2": (7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21),
    "No.4": (13, 14, 15, 16, 17, 18),
    "No.6": (7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22),
    "No.8": (6, 13, 14, 15, 16, 17, 18, 19),
}

# Unique pool sizes: 2^(#bank bits); paper quotes ~16,000 for No.6/No.9.
EXPECTED_POOL = {
    "No.1": 128,
    "No.2": 8192,
    "No.4": 64,
    "No.6": 16384,
    "No.8": 256,
}


def pages_for(name, fraction=0.85, strategy="contiguous", seed=0):
    machine = SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=NoiseParams.noiseless()
    )
    return machine.allocate(int(machine.total_bytes * fraction), strategy)


@pytest.mark.parametrize("name", sorted(BANK_BITS))
def test_pool_sizes(name):
    selection = select_addresses(pages_for(name), BANK_BITS[name])
    assert len(selection) == EXPECTED_POOL[name]


def test_no6_raw_count_matches_paper():
    """Paper Section IV-B: No.6 selects the highest number of addresses,
    'almost 16,000' — our unique pool is exactly 2^14 = 16384."""
    selection = select_addresses(pages_for("No.6"), BANK_BITS["No.6"])
    assert len(selection) == 16384
    assert selection.raw_count >= len(selection)


def test_pool_covers_all_bank_bit_patterns():
    """The selected pool must realise every combination of the bank bits —
    the property Algorithm 1 exists to guarantee."""
    bank_bits = BANK_BITS["No.1"]
    selection = select_addresses(pages_for("No.1"), bank_bits)
    patterns = set()
    for address in selection.pool:
        pattern = 0
        for index, position in enumerate(bank_bits):
            pattern |= ((int(address) >> position) & 1) << index
        patterns.add(pattern)
    assert len(patterns) == 2 ** len(bank_bits)


def test_pool_constant_outside_bank_bits():
    """Selected addresses differ only in bank bits."""
    bank_bits = BANK_BITS["No.8"]
    selection = select_addresses(pages_for("No.8"), bank_bits)
    variable = mask_of_bits(bank_bits)
    reference = int(selection.pool[0]) & ~variable
    for address in selection.pool[::7]:
        assert int(address) & ~variable == reference


def test_miss_mask_bits_forced_high():
    selection = select_addresses(pages_for("No.1"), BANK_BITS["No.1"])
    assert selection.miss_mask == mask_of_bits(range(7, 14))
    for address in selection.pool[::13]:
        assert int(address) & selection.miss_mask == selection.miss_mask


def test_all_pool_addresses_allocated():
    pages = pages_for("No.2")
    selection = select_addresses(pages, BANK_BITS["No.2"])
    assert pages.has_pages(selection.pool).all()


def test_fragmented_allocation_still_selects():
    """Algorithm 1's retry-over-pages path: fragmented memory has holes but
    a large allocation still contains a covering range."""
    pages = pages_for("No.4", fraction=0.7, strategy="fragmented")
    selection = select_addresses(pages, BANK_BITS["No.4"])
    assert len(selection) > 0
    assert pages.has_pages(selection.pool).all()


def test_too_small_buffer_raises():
    machine = SimulatedMachine.from_preset(
        preset("No.6"), noise=NoiseParams.noiseless()
    )
    pages = machine.allocate(1 << 21, "contiguous")  # 2 MiB < needed 8 MiB
    with pytest.raises(SelectionError, match="covers bank bits"):
        select_addresses(pages, BANK_BITS["No.6"])


def test_empty_bank_bits_raises():
    with pytest.raises(SelectionError, match="no candidate"):
        select_addresses(pages_for("No.1"), ())


def test_range_geometry():
    selection = select_addresses(pages_for("No.1"), BANK_BITS["No.1"])
    assert selection.range_end - selection.range_start == (
        (selection.range_mask & ~0xFFF) + 4096
    )
    assert selection.range_mask == (1 << 20) - (1 << 6)
