"""Tests for ground-truth-free mapping verification."""

import numpy as np
import pytest

from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.verify import verify_mapping
from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


@pytest.fixture(scope="module")
def setup():
    machine = SimulatedMachine.from_preset(
        preset("No.1"), seed=0, noise=NoiseParams.noiseless()
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
    probe.calibrate(pages, np.random.default_rng(0))
    return machine, pages, probe


def test_correct_mapping_verifies(setup):
    machine, pages, probe = setup
    belief = BeliefMapping.from_mapping(machine.ground_truth)
    report = verify_mapping(
        probe, pages, belief, np.random.default_rng(1), total_banks=16
    )
    assert report.verdict
    assert report.agreement == 1.0
    assert "CONSISTENT" in report.describe()


def test_missing_function_fails(setup):
    machine, pages, probe = setup
    truth = machine.ground_truth
    belief = BeliefMapping(
        address_bits=33,
        bank_functions=truth.bank_functions[1:],  # drop the channel bit
        row_bits=truth.row_bits,
        column_bits=truth.column_bits,
    )
    report = verify_mapping(
        probe, pages, belief, np.random.default_rng(2), pairs=512, total_banks=16
    )
    assert not report.verdict
    assert report.false_conflicts > 0


def test_phantom_row_bit_invisible_to_random_pairs(setup):
    """A documented limitation: a phantom *extra* row bit only mispredicts
    pairs that agree on every true row bit while differing in the phantom —
    a 2^-16 coincidence random pairs never produce. Random-pair
    verification passes; only a directed probe exposes the phantom."""
    machine, pages, probe = setup
    truth = machine.ground_truth
    belief = BeliefMapping(
        address_bits=33,
        bank_functions=truth.bank_functions,
        row_bits=(9,) + truth.row_bits,
        column_bits=tuple(b for b in truth.column_bits if b != 9),
    )
    report = verify_mapping(
        probe, pages, belief, np.random.default_rng(3), pairs=256, total_banks=16
    )
    assert report.verdict  # the blind spot

    # Directed pair differing only in the phantom bit: belief predicts a
    # conflict (same bank, different believed row); the machine reads fast.
    base = 1 << 25
    partner = base ^ (1 << 9)
    predicted = (
        belief.bank_of(base) == belief.bank_of(partner)
        and belief.row_of(base) != belief.row_of(partner)
    )
    assert predicted
    assert not probe.is_conflict(base, partner)


def test_threshold_scales_with_banks(setup):
    _, pages, probe = setup
    belief = BeliefMapping.from_mapping(preset("No.1").mapping)
    strict = verify_mapping(
        probe, pages, belief, np.random.default_rng(4), total_banks=64
    )
    lax = verify_mapping(probe, pages, belief, np.random.default_rng(4), total_banks=8)
    assert strict.threshold > lax.threshold


def test_pair_count_validated(setup):
    _, pages, probe = setup
    belief = BeliefMapping.from_mapping(preset("No.1").mapping)
    with pytest.raises(ValueError):
        verify_mapping(probe, pages, belief, np.random.default_rng(0), pairs=4)


class TestCompiledPredictionIdentity:
    """verify_mapping predicts with the compiled forward matrix; the
    predictions must match the scalar belief queries on every pair."""

    def test_batch_predictions_match_scalar(self):
        import numpy as np

        from repro.dram.belief import BeliefMapping
        from repro.dram.compiled import CompiledMapping
        from repro.dram.presets import preset

        mapping = preset("No.2").mapping
        belief = BeliefMapping.from_mapping(mapping)
        compiled = CompiledMapping.from_belief(belief)
        rng = np.random.default_rng(21)
        bases = rng.integers(0, 1 << belief.address_bits, 512, dtype=np.uint64)
        partners = rng.integers(0, 1 << belief.address_bits, 512, dtype=np.uint64)
        base_banks, base_rows, _ = compiled.translate(bases)
        partner_banks, partner_rows, _ = compiled.translate(partners)
        predictions = (base_banks == partner_banks) & (base_rows != partner_rows)
        for index in range(512):
            base, partner = int(bases[index]), int(partners[index])
            scalar = belief.bank_of(base) == belief.bank_of(partner) and belief.row_of(
                base
            ) != belief.row_of(partner)
            assert scalar == bool(predictions[index])

    def test_incomplete_belief_still_verifiable(self):
        """A belief missing bits (non-square forward matrix) must not
        crash the prediction path — it compiles forward-only."""
        from repro.dram.belief import BeliefMapping
        from repro.dram.compiled import CompiledMapping

        belief = BeliefMapping(
            address_bits=8,
            bank_functions=(0b11,),
            row_bits=(2, 3),
            column_bits=(4, 5),
        )
        compiled = CompiledMapping.from_belief(belief)
        import numpy as np

        banks, rows, _ = compiled.translate(np.arange(256, dtype=np.uint64))
        for addr in range(256):
            assert int(banks[addr]) == belief.bank_of(addr)
            assert int(rows[addr]) == belief.row_of(addr)
