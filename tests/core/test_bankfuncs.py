"""Tests for Algorithm 3 (bank address function detection)."""

import numpy as np
import pytest

from repro.analysis import gf2
from repro.analysis.bits import deposit_bits, extract_bits, mask_of_bits
from repro.core.bankfuncs import bank_number, detect_bank_functions
from repro.dram.errors import FunctionSearchError
from repro.dram.presets import PRESETS

BANK_BITS = {
    "No.1": (6, 14, 15, 16, 17, 18, 19),
    "No.2": tuple([7, 8, 9] + list(range(12, 22))),
    "No.4": (13, 14, 15, 16, 17, 18),
    "No.6": tuple([7, 8, 9] + list(range(12, 23))),
    "No.8": (6, 13, 14, 15, 16, 17, 18, 19),
}


def ideal_piles(name, per_bank=None):
    """Perfect piles: every combination of the bank bits, grouped by true
    bank (what Algorithms 1+2 produce on a noiseless machine)."""
    mapping = PRESETS[name].mapping
    bits = BANK_BITS[name]
    groups: dict[int, list[int]] = {}
    for value in range(1 << len(bits)):
        address = deposit_bits(value, bits)
        groups.setdefault(mapping.bank_of(address), []).append(address)
    piles = {}
    for members in groups.values():
        if per_bank is not None:
            members = members[:per_bank]
        piles[members[0]] = np.array(members[1:], dtype=np.uint64)
    return piles


@pytest.mark.parametrize("name", sorted(BANK_BITS))
@pytest.mark.parametrize("strategy", ["nullspace", "enumerate"])
def test_recovers_true_span(name, strategy):
    mapping = PRESETS[name].mapping
    piles = ideal_piles(name)
    result = detect_bank_functions(
        piles,
        BANK_BITS[name],
        expected_count=len(mapping.bank_functions),
        num_banks=mapping.geometry.total_banks,
        strategy=strategy,
    )
    assert gf2.span_equal(result.functions, mapping.bank_functions)


def test_strategies_agree():
    for name in ("No.1", "No.8"):
        piles = ideal_piles(name)
        mapping = PRESETS[name].mapping
        kwargs = dict(
            bank_bits=BANK_BITS[name],
            expected_count=len(mapping.bank_functions),
            num_banks=mapping.geometry.total_banks,
        )
        a = detect_bank_functions(piles, strategy="nullspace", **kwargs)
        b = detect_bank_functions(piles, strategy="enumerate", **kwargs)
        assert a.functions == b.functions
        assert set(a.candidates) == set(b.candidates)


def test_no1_exact_paper_functions():
    """No.1's minimum-weight basis is exactly the paper's: (6), (14,17),
    (15,18), (16,19)."""
    result = detect_bank_functions(
        ideal_piles("No.1"), BANK_BITS["No.1"], 4, 16
    )
    assert set(result.functions) == {
        mask_of_bits([6]),
        mask_of_bits([14, 17]),
        mask_of_bits([15, 18]),
        mask_of_bits([16, 19]),
    }


def test_candidates_are_whole_span():
    """The candidate set is every XOR combination of the true functions —
    what the paper's per-pile enumeration + intersection yields before
    redundancy removal."""
    mapping = PRESETS["No.1"].mapping
    result = detect_bank_functions(ideal_piles("No.1"), BANK_BITS["No.1"], 4, 16)
    assert set(result.candidates) == set(gf2.span(mapping.bank_functions))


def test_numbering_counts_all_banks():
    mapping = PRESETS["No.4"].mapping
    result = detect_bank_functions(ideal_piles("No.4"), BANK_BITS["No.4"], 3, 8)
    assert sorted(result.numbering.values()) == list(range(8))


def test_bank_number_helper():
    functions = (mask_of_bits([0]), mask_of_bits([1, 2]))
    assert bank_number(0b001, functions) == 0b01
    assert bank_number(0b010, functions) == 0b10
    assert bank_number(0b111, functions) == 0b01


def test_partial_piles_still_resolve():
    """Algorithm 2 may stop at 85% partitioned; a majority of piles still
    determines the functions."""
    mapping = PRESETS["No.8"].mapping
    piles = ideal_piles("No.8")
    kept = dict(list(piles.items())[:13])  # 13 of 16 piles
    result = detect_bank_functions(kept, BANK_BITS["No.8"], 4, 16)
    assert gf2.span_equal(result.functions, mapping.bank_functions)


def test_too_few_addresses_gives_wrong_functions():
    """Starved piles (three piles of two addresses) leave the candidate
    space under-constrained; Algorithm 3 then returns *some* function set
    that is not the true one — the failure that downstream mapping
    validation (and the paper's check_numbering over all piles) exists to
    catch."""
    mapping = PRESETS["No.2"].mapping
    piles = ideal_piles("No.2", per_bank=2)
    starved = dict(list(piles.items())[:3])
    result = detect_bank_functions(starved, BANK_BITS["No.2"], 5, 32)
    assert not gf2.span_equal(result.functions, mapping.bank_functions)


def test_corrupt_pile_detected():
    """An address outside the selection's bit range is a hard error."""
    piles = ideal_piles("No.1")
    pivot = next(iter(piles))
    piles[pivot] = np.append(piles[pivot], np.uint64(pivot ^ (1 << 25)))
    with pytest.raises(FunctionSearchError, match="differ outside"):
        detect_bank_functions(piles, BANK_BITS["No.1"], 4, 16)


def test_noisy_pile_breaks_numbering():
    """A same-bank pile polluted with a wrong-bank address shrinks the
    candidate space below the expected function count."""
    mapping = PRESETS["No.1"].mapping
    piles = ideal_piles("No.1")
    pivot = next(iter(piles))
    other_pivot = [p for p in piles if mapping.bank_of(p) != mapping.bank_of(pivot)][0]
    piles[pivot] = np.append(piles[pivot], np.uint64(other_pivot))
    with pytest.raises(FunctionSearchError):
        detect_bank_functions(piles, BANK_BITS["No.1"], 4, 16)


def test_input_validation():
    with pytest.raises(FunctionSearchError, match="no piles"):
        detect_bank_functions({}, (1, 2), 1, 2)
    piles = ideal_piles("No.1")
    with pytest.raises(FunctionSearchError, match="candidate bank bits"):
        detect_bank_functions(piles, (6,), 4, 16)
    with pytest.raises(ValueError, match="strategy"):
        detect_bank_functions(piles, BANK_BITS["No.1"], 4, 16, strategy="magic")
