"""Tests for Step 3 (fine-grained shared row/column detection)."""

import numpy as np
import pytest

from repro.core.coarse import CoarseDetector
from repro.core.fine import FineDetector
from repro.core.knowledge import DomainKnowledge
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.dram.errors import FineDetectionError
from repro.dram.presets import PRESETS, preset
from repro.machine.machine import SimulatedMachine
from repro.machine.sysinfo import SystemInfo
from repro.memctrl.timing import NoiseParams


def run_fine(name, functions=None, seed=0):
    machine = SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=NoiseParams.noiseless()
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
    rng = np.random.default_rng(seed)
    probe.calibrate(pages, rng)
    knowledge = DomainKnowledge.gather(SystemInfo.from_geometry(machine.ground_truth.geometry))
    coarse = CoarseDetector(probe, pages, knowledge.address_bits, rng).detect()
    detector = FineDetector(probe, knowledge, pages, rng)
    functions = functions if functions is not None else preset(name).mapping.bank_functions
    return detector.detect(coarse, tuple(functions))


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_completes_rows_and_columns(name):
    """On every machine, Step 3 with the true functions must complete the
    row/column sets to exactly the ground truth."""
    result = run_fine(name)
    mapping = PRESETS[name].mapping
    assert result.row_bits == mapping.row_bits
    assert result.column_bits == mapping.column_bits


def test_no2_shared_bits():
    """No.2: shared rows 18-21 (from the two-bit functions), shared columns
    8, 9, 12, 13 (from the wide hash, excluding its lowest bit 7)."""
    result = run_fine("No.2")
    assert result.shared_row_bits == (18, 19, 20, 21)
    assert result.shared_column_bits == (8, 9, 12, 13)


def test_no8_shared_column_is_bit6():
    result = run_fine("No.8")
    assert result.shared_row_bits == (17, 18, 19)
    assert result.shared_column_bits == (6,)


def test_no4_needs_no_shared_columns():
    """No.4's functions touch no column bits; only rows are completed."""
    result = run_fine("No.4")
    assert result.shared_column_bits == ()
    assert result.shared_row_bits == (16, 17, 18)


def test_works_with_equivalent_basis():
    """Step 3 must work with *any* basis Algorithm 3 might output, not just
    the paper's (the kernel-repair logic depends only on the span)."""
    mapping = preset("No.2").mapping
    functions = list(mapping.bank_functions)
    # Re-express the wide hash as its canonical minimum-value form.
    functions[4] ^= functions[0] ^ functions[1]
    result = run_fine("No.2", functions=functions)
    assert result.row_bits == mapping.row_bits
    assert result.column_bits == mapping.column_bits


def test_wrong_functions_fail_loudly():
    """Feeding Step 3 a mapping-inconsistent function set must raise, not
    silently fabricate bits."""
    bad_functions = (1 << 14 | 1 << 15, 1 << 16 | 1 << 17, 1 << 18 | 1 << 19, 1 << 6)
    with pytest.raises(FineDetectionError):
        run_fine("No.1", functions=bad_functions)
