"""Tests for Algorithm 2 (physical-address partition)."""

import numpy as np
import pytest

from repro.core.partition import PartitionConfig, partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.selection import select_addresses
from repro.dram.errors import PartitionError
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

BANK_BITS = {
    "No.1": (6, 14, 15, 16, 17, 18, 19),
    "No.4": (13, 14, 15, 16, 17, 18),
    "No.8": (6, 13, 14, 15, 16, 17, 18, 19),
}


def setup(name, seed=0, noise=None, probe_config=None):
    machine = SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=noise or NoiseParams.noiseless()
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(
        machine, probe_config or ProbeConfig(rounds=100, calibration_pairs=768)
    )
    probe.calibrate(pages, np.random.default_rng(seed))
    selection = select_addresses(pages, BANK_BITS[name])
    return machine, probe, selection


class TestPartitionConfig:
    def test_paper_defaults(self):
        config = PartitionConfig()
        assert config.delta == 0.2
        assert config.per_threshold == 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionConfig(delta=0.0)
        with pytest.raises(ValueError):
            PartitionConfig(per_threshold=1.5)
        with pytest.raises(ValueError):
            PartitionConfig(max_rounds_factor=0)


class TestPartition:
    def test_piles_are_same_bank(self):
        machine, probe, selection = setup("No.8")
        result = partition_pool(
            probe, selection.pool, 16, np.random.default_rng(0)
        )
        mapping = machine.ground_truth
        for pivot, members in result.piles.items():
            pivot_bank = mapping.bank_of(pivot)
            for member in members:
                assert mapping.bank_of(int(member)) == pivot_bank

    def test_piles_are_disjoint(self):
        _, probe, selection = setup("No.8")
        result = partition_pool(probe, selection.pool, 16, np.random.default_rng(0))
        seen: set[int] = set()
        for pivot, members in result.piles.items():
            addresses = {pivot} | {int(m) for m in members}
            assert not addresses & seen
            seen |= addresses

    def test_partitioned_fraction_reaches_threshold(self):
        _, probe, selection = setup("No.1")
        config = PartitionConfig()
        result = partition_pool(
            probe, selection.pool, 16, np.random.default_rng(0), config
        )
        fraction = result.partitioned_count() / len(selection.pool)
        assert fraction >= config.per_threshold or result.pile_count == 16

    def test_piles_have_distinct_banks(self):
        machine, probe, selection = setup("No.4")
        result = partition_pool(probe, selection.pool, 8, np.random.default_rng(0))
        mapping = machine.ground_truth
        banks = [mapping.bank_of(pivot) for pivot in result.piles]
        assert len(set(banks)) == len(banks)

    def test_leftovers_are_same_row_partners(self):
        """On No.8 each pile misses its pivot's same-bank-same-row partner
        (bits 6 and 13 flipped together); those end up as leftovers."""
        machine, probe, selection = setup("No.8")
        result = partition_pool(probe, selection.pool, 16, np.random.default_rng(0))
        mapping = machine.ground_truth
        for leftover in result.leftovers:
            address = int(leftover)
            # Same bank as some pivot but same row as it too.
            partners = [
                pivot
                for pivot in result.piles
                if mapping.bank_of(pivot) == mapping.bank_of(address)
            ]
            if partners:
                assert any(
                    mapping.row_of(pivot) == mapping.row_of(address)
                    for pivot in partners
                )

    def test_pool_too_small_raises(self):
        _, probe, selection = setup("No.1")
        with pytest.raises(PartitionError, match="cannot form"):
            partition_pool(probe, selection.pool[:20], 16, np.random.default_rng(0))

    def test_invalid_bank_count(self):
        _, probe, selection = setup("No.1")
        with pytest.raises(PartitionError, match="at least 2"):
            partition_pool(probe, selection.pool, 1, np.random.default_rng(0))

    def test_wrong_bank_count_fails_to_converge(self):
        """Lying about #banks (64 instead of 16) makes every pile fail the
        size tolerance — the error the paper's System Information knowledge
        prevents."""
        _, probe, selection = setup("No.1")
        with pytest.raises(PartitionError, match="no convergence"):
            partition_pool(probe, selection.pool, 64, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        _, probe_a, selection_a = setup("No.4")
        _, probe_b, selection_b = setup("No.4")
        result_a = partition_pool(
            probe_a, selection_a.pool, 8, np.random.default_rng(3)
        )
        result_b = partition_pool(
            probe_b, selection_b.pool, 8, np.random.default_rng(3)
        )
        assert sorted(result_a.piles) == sorted(result_b.piles)

    def test_noise_tolerated_with_repeats(self):
        machine, probe, selection = setup(
            "No.8",
            seed=7,
            noise=NoiseParams(),  # default quiet-machine noise
            probe_config=ProbeConfig(rounds=100, calibration_pairs=256, repeats=2),
        )
        result = partition_pool(probe, selection.pool, 16, np.random.default_rng(7))
        mapping = machine.ground_truth
        wrong = 0
        for pivot, members in result.piles.items():
            pivot_bank = mapping.bank_of(pivot)
            wrong += sum(
                1 for m in members if mapping.bank_of(int(m)) != pivot_bank
            )
        assert wrong <= 2
