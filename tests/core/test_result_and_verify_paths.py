"""Tests for result rendering and the pipeline's observable accounting."""

import numpy as np
import pytest

from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.result import DramDigResult
from repro.core.verify import verify_mapping
from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams

FAST = DramDigConfig(probe=ProbeConfig(rounds=200))


@pytest.fixture(scope="module")
def no1_result():
    machine = SimulatedMachine.from_preset(preset("No.1"), seed=3)
    return DramDig(FAST).run(machine), machine


class TestResultRendering:
    def test_summary_structure(self, no1_result):
        result, _ = no1_result
        lines = result.summary().splitlines()
        assert lines[0].startswith("recovered in")
        assert any(line.startswith("bank functions:") for line in lines)
        assert any(line.startswith("phases:") for line in lines)

    def test_bank_functions_property(self, no1_result):
        result, _ = no1_result
        assert result.bank_functions == result.mapping.bank_functions

    def test_raw_pool_counts_aliases(self, no1_result):
        """The raw selection (with miss-mask aliases) is a multiple of the
        deduplicated pool — the discrepancy behind the paper's Section IV-B
        address counts."""
        result, _ = no1_result
        assert result.raw_pool_size >= result.pool_size
        assert result.raw_pool_size % result.pool_size == 0

    def test_measurement_economy(self, no1_result):
        """DRAMDig's knowledge keeps the measurement budget tiny: well under
        ten thousand pair measurements for the whole No.1 run."""
        result, _ = no1_result
        assert result.measurements < 10_000

    def test_construct_minimal(self):
        mapping = preset("No.4").mapping
        result = DramDigResult(mapping=mapping, total_seconds=1.0)
        assert result.retries == 0
        assert result.coarse is None


class TestVerifyAfterPipeline:
    def test_recovered_mapping_verifies_against_fresh_probe(self, no1_result):
        """End of the real user's workflow: the recovered mapping must be
        consistent with fresh measurements, checked without ground truth."""
        result, machine = no1_result
        pages = machine.allocate(int(machine.total_bytes * 0.5), "contiguous")
        probe = LatencyProbe(machine, ProbeConfig(rounds=200, calibration_pairs=768))
        rng = np.random.default_rng(9)
        probe.calibrate(pages, rng)
        report = verify_mapping(
            probe,
            pages,
            BeliefMapping.from_mapping(result.mapping),
            rng,
            pairs=128,
            total_banks=16,
        )
        assert report.verdict


class TestMachineAccountingAcrossPipeline:
    def test_clock_and_stats_monotone(self):
        machine = SimulatedMachine.from_preset(
            preset("No.4"), seed=0, noise=NoiseParams.noiseless()
        )
        assert machine.elapsed_seconds == 0.0
        result = DramDig(FAST).run(machine)
        assert machine.elapsed_seconds == pytest.approx(result.total_seconds, rel=1e-6)
        assert machine.stats.measurements == result.measurements
        assert machine.stats.allocations >= 1
        assert machine.stats.accesses_timed > machine.stats.measurements

    def test_phase_seconds_all_positive(self):
        machine = SimulatedMachine.from_preset(preset("No.4"), seed=0)
        result = DramDig(FAST).run(machine)
        for phase, seconds in result.phase_seconds.items():
            assert seconds >= 0.0, phase
        assert result.phase_seconds["partition"] > 0.0
