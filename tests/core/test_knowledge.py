"""Unit tests for the domain-knowledge provider."""

import pytest

from repro.core.knowledge import DomainKnowledge
from repro.dram.presets import PRESETS
from repro.machine.sysinfo import SystemInfo


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_derived_counts_match_ground_truth(name):
    """The knowledge derived from sysinfo must equal the ground-truth
    geometry's bit budget on every paper machine."""
    machine = PRESETS[name]
    knowledge = DomainKnowledge.gather(SystemInfo.from_geometry(machine.geometry))
    mapping = machine.mapping
    assert knowledge.address_bits == machine.geometry.address_bits
    assert knowledge.num_bank_functions == len(mapping.bank_functions)
    assert knowledge.num_row_bits == len(mapping.row_bits)
    assert knowledge.num_column_bits == len(mapping.column_bits)
    assert knowledge.total_banks == machine.geometry.total_banks


def test_ddr4_x16_width_inference():
    """DDR4 with 8 banks per rank must be identified as x16 (8 KiB page)."""
    info = SystemInfo.from_geometry(PRESETS["No.7"].geometry)
    knowledge = DomainKnowledge.gather(info)
    assert knowledge.row_bytes == 8192
    assert knowledge.num_column_bits == 13


class TestExcludedColumnBit:
    def test_wide_function_lowest_bit(self):
        """No.2: the 7-bit hash (7,8,9,12,13,18,19) excludes bit 7."""
        functions = [f for f in PRESETS["No.2"].mapping.bank_functions]
        assert DomainKnowledge.excluded_column_bit(functions) == 7

    def test_no6_excludes_bit8(self):
        functions = [f for f in PRESETS["No.6"].mapping.bank_functions]
        assert DomainKnowledge.excluded_column_bit(functions) == 8

    def test_tie_break_prefers_high_lowest_bit(self):
        """Among all-two-bit machines the excluded bit must never be a real
        column (bit 6 is a column on No.8)."""
        functions = [f for f in PRESETS["No.8"].mapping.bank_functions]
        excluded = DomainKnowledge.excluded_column_bit(functions)
        assert excluded not in PRESETS["No.8"].mapping.column_bits

    def test_empty(self):
        assert DomainKnowledge.excluded_column_bit([]) is None


def test_describe_mentions_counts():
    knowledge = DomainKnowledge.gather(
        SystemInfo.from_geometry(PRESETS["No.1"].geometry)
    )
    text = knowledge.describe()
    assert "16 banks" in text
    assert "4 bank functions" in text
