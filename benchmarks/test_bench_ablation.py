"""Ablation benchmarks: what each piece of domain knowledge buys.

The paper's thesis is that *knowledge* is what makes reverse engineering
generic + efficient + deterministic. Each ablation below removes one
knowledge source or design choice and measures the damage:

* **System Information (bank count)** — Algorithm 2 with a wrong ``#bank``
  never converges.
* **Empirical observation 2 (column exclusion)** — without the
  lowest-bit-of-widest-function rule, Step 3 misattributes the shared
  column bits on the wide-hash machines and the mapping fails validation.
* **Partition tolerance (delta)** — the paper's 0.2 is load-bearing: a
  tight 0.05 rejects every pile (the pivot's same-row partner always makes
  piles one address short), a loose 0.6 admits noise-bloated piles.
* **Measurement repeats** — DRAMA-style single-shot measurement collapses
  on the noisy machines where repeated-minimum measurement sails through.
* **Rounds** — more rounds per measurement cost linearly more simulated
  time without improving an already-converged median.

Run with ``pytest benchmarks/test_bench_ablation.py --benchmark-only -s``.
"""

import numpy as np

from repro.core.coarse import CoarseDetector
from repro.core.dramdig import DramDig, DramDigConfig
from repro.core.fine import FineDetector
from repro.core.knowledge import DomainKnowledge
from repro.core.partition import PartitionConfig, partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.selection import select_addresses
from repro.dram.errors import MappingError, PartitionError, ReproError
from repro.dram.presets import preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine
from repro.machine.sysinfo import SystemInfo
from repro.memctrl.timing import NoiseParams


def _pipeline_front(name, seed=0, noise=None, probe_config=None):
    machine = SimulatedMachine.from_preset(
        preset(name), seed=seed, noise=noise or NoiseParams.noiseless()
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(
        machine, probe_config or ProbeConfig(rounds=200, calibration_pairs=768)
    )
    rng = np.random.default_rng(seed)
    probe.calibrate(pages, rng)
    return machine, pages, probe, rng


def test_bench_bank_count_knowledge(benchmark):
    """Algorithm 2 with the true vs a wrong bank count."""

    def run():
        outcomes = []
        for claimed_banks in (8, 16, 32):
            machine, pages, probe, rng = _pipeline_front("No.8")
            selection = select_addresses(pages, (6, 13, 14, 15, 16, 17, 18, 19))
            mark = machine.clock.checkpoint()
            try:
                result = partition_pool(probe, selection.pool, claimed_banks, rng)
                outcome = f"{result.pile_count} piles"
            except PartitionError:
                outcome = "FAILED (no convergence)"
            outcomes.append(
                (claimed_banks, outcome, machine.clock.since(mark) / 1e9)
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: bank-count knowledge (machine No.8, true #bank=16) ===")
    print(
        render_table(
            ["claimed #bank", "outcome", "sim seconds"],
            [(banks, outcome, f"{seconds:.1f}") for banks, outcome, seconds in outcomes],
        )
    )
    by_banks = {banks: outcome for banks, outcome, _ in outcomes}
    assert by_banks[16].endswith("piles")
    assert int(by_banks[16].split()[0]) >= 13
    assert "FAILED" in by_banks[8]
    assert "FAILED" in by_banks[32]


def test_bench_column_exclusion_rule(benchmark):
    """Step 3 with and without empirical observation 2, on the wide-hash
    machines where it matters."""

    def run():
        results = []
        for name in ("No.2", "No.6"):
            truth = preset(name).mapping
            for use_rule in (True, False):
                machine, pages, probe, rng = _pipeline_front(name)
                knowledge = DomainKnowledge.gather(
                    SystemInfo.from_geometry(truth.geometry)
                )
                coarse = CoarseDetector(
                    probe, pages, knowledge.address_bits, rng
                ).detect()
                detector = FineDetector(
                    probe, knowledge, pages, rng,
                    use_column_exclusion_rule=use_rule,
                )
                fine = detector.detect(coarse, truth.bank_functions)
                correct = fine.column_bits == truth.column_bits
                results.append((name, use_rule, correct))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: empirical column-exclusion rule ===")
    print(
        render_table(
            ["machine", "rule enabled", "columns correct"],
            [(name, rule, correct) for name, rule, correct in results],
        )
    )
    for name, rule, correct in results:
        assert correct == rule, (name, rule)


def test_bench_partition_delta_sweep(benchmark):
    """Sensitivity of Algorithm 2 to the delta tolerance (paper: 0.2)."""

    def run():
        rows = []
        for delta in (0.02, 0.1, 0.2, 0.4, 0.6):
            machine, pages, probe, rng = _pipeline_front("No.8")
            selection = select_addresses(pages, (6, 13, 14, 15, 16, 17, 18, 19))
            config = PartitionConfig(delta=delta)
            try:
                result = partition_pool(probe, selection.pool, 16, rng, config)
                rows.append((delta, result.pile_count, result.rounds, "ok"))
            except PartitionError:
                rows.append((delta, 0, 0, "FAILED"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: partition tolerance delta (No.8) ===")
    print(render_table(["delta", "piles", "rounds", "outcome"], rows))
    outcomes = {delta: outcome for delta, _, _, outcome in rows}
    # Too tight: piles (15 of ideal 16 addresses) always rejected.
    assert outcomes[0.02] == "FAILED"
    # The paper's setting works.
    assert outcomes[0.2] == "ok"


def test_bench_measurement_repeats(benchmark):
    """Single-shot vs repeated-minimum measurement on a noisy machine."""

    def run():
        rows = []
        for repeats in (1, 2, 3):
            config = DramDigConfig(
                probe=ProbeConfig(rounds=4000, repeats=repeats),
                max_retries=0,
            )
            machine = SimulatedMachine.from_preset(preset("No.3"), seed=1)
            try:
                result = DramDig(config).run(machine)
                correct = result.mapping.equivalent_to(preset("No.3").mapping)
                rows.append(
                    (repeats, "ok" if correct else "WRONG", f"{result.total_seconds:.0f}")
                )
            except ReproError as error:
                rows.append((repeats, f"FAILED ({type(error).__name__})", "-"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: measurement repeats on the noisy No.3 ===")
    print(render_table(["repeats", "outcome", "sim seconds"], rows))
    by_repeats = {repeats: outcome for repeats, outcome, _ in rows}
    assert "FAILED" in by_repeats[1] or "WRONG" in by_repeats[1]
    assert by_repeats[3] == "ok"


def test_bench_rounds_cost(benchmark):
    """Rounds per measurement trade simulated time for nothing once the
    median converges (quiet machine)."""

    def run():
        rows = []
        for rounds in (500, 4000, 16000):
            config = DramDigConfig(probe=ProbeConfig(rounds=rounds))
            machine = SimulatedMachine.from_preset(preset("No.1"), seed=1)
            result = DramDig(config).run(machine)
            correct = result.mapping.equivalent_to(preset("No.1").mapping)
            rows.append((rounds, "ok" if correct else "WRONG", result.total_seconds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: rounds per measurement (No.1) ===")
    print(
        render_table(
            ["rounds", "outcome", "sim seconds"],
            [(rounds, outcome, f"{seconds:.1f}") for rounds, outcome, seconds in rows],
        )
    )
    assert all(outcome == "ok" for _, outcome, _ in rows)
    times = [seconds for _, _, seconds in rows]
    assert times[0] < times[1] < times[2]


def test_bench_spec_knowledge_validation(benchmark):
    """Without the DDR-spec row/column counts there is no Step 3 bound; the
    pipeline's validation rejects the incomplete mapping instead of
    emitting it silently."""

    def run():
        truth = preset("No.2").mapping
        machine, pages, probe, rng = _pipeline_front("No.2")
        knowledge = DomainKnowledge.gather(SystemInfo.from_geometry(truth.geometry))
        coarse = CoarseDetector(probe, pages, knowledge.address_bits, rng).detect()
        # "No spec": pretend the coarse result is complete.
        from repro.dram.mapping import AddressMapping

        try:
            AddressMapping(
                geometry=truth.geometry,
                bank_functions=truth.bank_functions,
                row_bits=coarse.row_bits,
                column_bits=coarse.column_bits,
            )
            return "accepted"
        except MappingError as error:
            return f"rejected ({str(error)[:40]}...)"

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: spec knowledge (No.2 without Step 3) ===")
    print(f"coarse-only mapping: {outcome}")
    assert outcome.startswith("rejected")
