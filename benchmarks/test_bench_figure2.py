"""Benchmark: regenerate paper Figure 2 (time costs, DRAMDig vs DRAMA).

Run with ``pytest benchmarks/test_bench_figure2.py --benchmark-only -s``.
Asserts the figure's shape: DRAMDig finishes everywhere and faster than
DRAMA; DRAMA is killed (2 h timeout) on the noisy laptops No.3 and No.7;
the partition-dominated cost scales with the Algorithm-1 pool size.
"""

from repro.evalsuite.figure2 import render_figure2, run_figure2
from repro.evalsuite.reporting import render_series


def test_bench_figure2(benchmark):
    points = benchmark.pedantic(run_figure2, kwargs={"seed": 1}, rounds=1, iterations=1)
    print("\n=== Figure 2 (reproduced) ===")
    print(render_figure2(points))
    print()
    print(render_series("DRAMDig", [(p.machine, p.dramdig_seconds) for p in points]))
    print(render_series("DRAMA  ", [(p.machine, p.drama_seconds) for p in points]))

    by_machine = {p.machine: p for p in points}
    # DRAMDig always finishes, within the paper's worst case.
    assert all(p.dramdig_seconds < 18 * 60 for p in points)
    # DRAMA is slower everywhere it finishes, and dies on No.3/No.7.
    for point in points:
        if not point.drama_timed_out:
            assert point.drama_seconds > point.dramdig_seconds, point.machine
    assert by_machine["No.3"].drama_timed_out
    assert by_machine["No.7"].drama_timed_out
    assert by_machine["No.3"].drama_seconds >= 7200
    # Pool size drives DRAMDig cost: No.6/No.9 (~16k addresses) are the
    # slowest, as Section IV-B reports.
    slowest = max(points, key=lambda p: p.dramdig_seconds)
    assert slowest.machine in ("No.6", "No.9")
    assert by_machine["No.6"].dramdig_pool_size == 16384
