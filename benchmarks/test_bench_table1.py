"""Benchmark: regenerate paper Table I (qualitative tool comparison).

Run with ``pytest benchmarks/test_bench_table1.py --benchmark-only -s``.
Asserts the measured property matrix equals the paper's:

===============  =======  =========  =============
Tool             Generic  Efficient  Deterministic
===============  =======  =========  =============
Seaborn et al.   x        x          yes
Xiao et al.      x        yes        yes
DRAMA            yes*     x/yes      x
DRAMDig          yes      yes        yes
===============  =======  =========  =============

(*) The paper marks DRAMA generic by design; measured on this panel it
times out on the noisy laptops, so our table reports both facets.
"""

from repro.evalsuite.table1 import render_table1, run_table1


def test_bench_table1(benchmark):
    verdicts = benchmark.pedantic(
        run_table1, kwargs={"seed": 1, "determinism_runs": 3}, rounds=1, iterations=1
    )
    print("\n=== Table I (reproduced, measured) ===")
    print(render_table1(verdicts))

    by_tool = {verdict.tool: verdict for verdict in verdicts}
    dramdig = by_tool["DRAMDig"]
    assert dramdig.generic and dramdig.efficient and dramdig.deterministic
    assert dramdig.successes == 9

    drama = by_tool["DRAMA"]
    assert not drama.deterministic
    assert drama.successes == 7  # all but No.3/No.7

    xiao = by_tool["Xiao et al."]
    assert not xiao.generic
    assert xiao.efficient
    assert xiao.successes == 4  # No.1, No.3, No.4, No.5

    seaborn = by_tool["Seaborn et al."]
    assert not seaborn.generic and not seaborn.efficient
