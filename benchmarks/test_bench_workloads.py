"""Bench: workload analysis on the substrate (why XOR hashing exists).

Run with ``pytest benchmarks/test_bench_workloads.py --benchmark-only -s``.
Uses the trace tools to quantify what Intel's bank hash buys on a
pathological strided workload, plus the attack-variant effectiveness
ordering from the rowhammer literature.
"""

import numpy as np

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.dram.random_mapping import naive_mapping
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine
from repro.memctrl.trace import matrix_column_trace, random_trace, run_trace, sequential_trace
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.variants import one_location_test, single_sided_test


def test_bench_hash_vs_naive(benchmark):
    machine_preset = preset("No.1")
    hashed = machine_preset.mapping
    naive = naive_mapping(machine_preset.geometry)

    def run():
        rng = np.random.default_rng(0)
        traces = {
            "sequential": sequential_trace(0x4000000, 2000),
            "matrix-col": matrix_column_trace(
                0x4000000, rows=256, row_stride_bytes=8192 * 16, columns=8
            ),
            "random": random_trace(machine_preset.geometry.total_bytes, 2000, rng),
        }
        rows = []
        for name, trace in traces.items():
            for label, mapping in (("hashed", hashed), ("naive", naive)):
                stats = run_trace(mapping, trace)
                rows.append(
                    (
                        name,
                        label,
                        f"{stats.hit_rate:.1%}",
                        stats.banks_used,
                        f"{stats.speedup_from_banking:.1f}x",
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Workload study: hashed vs naive bank layout (No.1) ===")
    print(render_table(["workload", "mapping", "hit rate", "banks", "speedup"], rows))
    by_key = {(w, m): s for w, m, _, _, s in rows}
    assert by_key[("matrix-col", "hashed")] == "16.0x"
    assert by_key[("matrix-col", "naive")] == "1.0x"


def test_bench_attack_variants(benchmark):
    machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
    belief = BeliefMapping.from_mapping(preset("No.2").mapping)
    config = HammerConfig(duration_seconds=60.0, test_variability=0.0)
    vulnerability = preset("No.2").hammer_vulnerability

    def run():
        double = DoubleSidedAttack(
            machine, config=config, vulnerability=vulnerability
        ).run(belief, seed=2)
        one_loc = one_location_test(machine, belief, vulnerability, config, seed=2)
        single = single_sided_test(machine, belief, vulnerability, config, seed=2)
        return [
            ("double-sided", double.flips),
            ("one-location", one_loc.flips),
            ("single-sided", single.flips),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Attack variants (No.2, 1-minute tests, correct mapping) ===")
    print(render_table(["variant", "flips"], rows))
    flips = dict(rows)
    assert flips["double-sided"] > flips["one-location"] > flips["single-sided"]
