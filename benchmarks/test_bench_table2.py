"""Benchmark: regenerate paper Table II (mappings on all 9 machines).

Run with ``pytest benchmarks/test_bench_table2.py --benchmark-only -s``.
The printed table mirrors the paper's; the assertion verifies every
recovered mapping against ground truth (bank functions as GF(2) spans, row
and column bits exactly).
"""

from repro.evalsuite.table2 import render_table2, run_table2


def test_bench_table2(benchmark):
    rows = benchmark.pedantic(run_table2, kwargs={"seed": 1}, rounds=1, iterations=1)
    print("\n=== Table II (reproduced) ===")
    print(render_table2(rows))
    assert len(rows) == 9
    assert all(row.matches_ground_truth for row in rows)
    # Paper band: 69 s best, 17 min worst (simulated seconds here).
    times = [row.seconds for row in rows]
    assert max(times) < 18 * 60
