"""Micro-benchmarks of the library's hot primitives.

These are real pytest-benchmark measurements (many rounds), unlike the
table/figure regenerations which run once. They track the simulator's
throughput: address decode, timing-channel batch classification, GF(2)
algebra, and the partition inner loop.
"""

import numpy as np
import pytest

from repro.analysis import gf2
from repro.analysis.arrays import sorted_unique
from repro.analysis.bits import gather_xor, packed_parity_tables, parity_array
from repro.core.partition import partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.selection import select_addresses
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


@pytest.fixture(scope="module")
def no1_machine():
    return SimulatedMachine.from_preset(
        preset("No.1"), seed=0, noise=NoiseParams.noiseless()
    )


@pytest.fixture(scope="module")
def address_pool():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2**33, 16384, dtype=np.uint64)


def test_bench_bank_decode_batch(benchmark, no1_machine, address_pool):
    mapping = no1_machine.ground_truth
    result = benchmark(mapping.bank_of_array, address_pool)
    assert result.max() < 16


def test_bench_row_decode_batch(benchmark, no1_machine, address_pool):
    mapping = no1_machine.ground_truth
    result = benchmark(mapping.row_of_array, address_pool)
    assert result.max() < 2**16


def test_bench_bank_decode_popcount_reference(benchmark, no1_machine, address_pool):
    """Retained pre-LUT decode — the before column of the speedup claim."""
    mapping = no1_machine.ground_truth
    result = benchmark(mapping.bank_of_array_popcount, address_pool)
    assert result.max() < 16


def test_bench_row_decode_shift_reference(benchmark, no1_machine, address_pool):
    """Retained pre-LUT decode — the before column of the speedup claim."""
    mapping = no1_machine.ground_truth
    result = benchmark(mapping.row_of_array_shift, address_pool)
    assert result.max() < 2**16


def test_bench_packed_parity_gather(benchmark, no1_machine, address_pool):
    """The raw LUT primitive: all bank functions in one gather pass."""
    functions = no1_machine.ground_truth.bank_functions
    tables = packed_parity_tables(functions)

    def decode():
        return gather_xor(address_pool, tables)

    result = benchmark(decode)
    assert result.shape == address_pool.shape
    assert result.max() < 1 << len(functions)


def test_bench_packed_parity_table_build(benchmark, no1_machine):
    """Table construction cost (paid once per mapping, then cached)."""
    functions = no1_machine.ground_truth.bank_functions
    tables = benchmark(packed_parity_tables, functions)
    assert tables


def test_bench_parity_array(benchmark, address_pool):
    mask = (1 << 14) | (1 << 17)
    result = benchmark(parity_array, address_pool, mask)
    assert result.shape == address_pool.shape


def test_bench_latency_batch(benchmark, no1_machine, address_pool):
    base = int(address_pool[0])
    latencies = benchmark(
        no1_machine.measure_latency_batch, base, address_pool[:8192]
    )
    assert latencies.shape == (8192,)


def test_bench_gf2_nullspace(benchmark):
    rng = np.random.default_rng(1)
    rows = [int(value) for value in rng.integers(1, 2**14, 200, dtype=np.uint64)]

    def solve():
        return gf2.nullspace_basis(gf2.row_echelon(rows), 14)

    basis = benchmark(solve)
    assert len(basis) == 14 - gf2.rank(rows)


def test_bench_gf2_span_equal(benchmark):
    functions = preset("No.6").mapping.bank_functions

    def check():
        return gf2.span_equal(functions, functions)

    assert benchmark(check)


def test_bench_partition_no8(benchmark):
    """The paper's dominant cost: Algorithm 2 on a 256-address pool."""

    def run():
        machine = SimulatedMachine.from_preset(
            preset("No.8"), seed=0, noise=NoiseParams.noiseless()
        )
        pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
        probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
        probe.calibrate(pages, np.random.default_rng(0))
        selection = select_addresses(
            pages, (6, 13, 14, 15, 16, 17, 18, 19)
        )
        return partition_pool(probe, selection.pool, 16, np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.pile_count >= 13


def test_bench_partition_large_pool(benchmark):
    """Algorithm 2 on a 4096-address pool — the large-pool regime the
    paper hits on No.6/No.9 (~16k addresses) and the workload the
    dedup/decode optimisations target. The pool tiles the No.8 selection
    with column-only offsets (bits 7-10 cleared then ORed back in), which
    multiplies the pool 16x without disturbing any bank or row bit."""
    machine = SimulatedMachine.from_preset(
        preset("No.8"), seed=0, noise=NoiseParams.noiseless()
    )
    pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
    probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
    probe.calibrate(pages, np.random.default_rng(0))
    base_pool = select_addresses(pages, (6, 13, 14, 15, 16, 17, 18, 19)).pool
    cleared = base_pool & np.uint64(~0x780 & (2**64 - 1))
    pool = sorted_unique(
        np.concatenate([cleared | np.uint64(k << 7) for k in range(16)])
    )
    assert pool.size == 4096

    def run():
        return partition_pool(probe, pool, 16, np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.pile_count == 16


def test_bench_sorted_unique_large_pool(benchmark):
    """Pool dedup on an allocator-sized array (the np.unique replacement)."""
    rng = np.random.default_rng(6)
    values = rng.integers(0, 2**24, 1 << 20, dtype=np.uint64)
    result = benchmark(sorted_unique, values)
    assert result.size <= values.size
    assert (np.diff(result.astype(np.int64)) > 0).all()


def test_bench_emit_perf_json():
    """Refresh the micro section of BENCH_perf.json from this suite.

    Keeps the decode-throughput record current whenever the micro benches
    run; the grid (serial-vs-parallel wall-clock) section is preserved if
    present — regenerate it with ``python -m repro.parallel.perf``.
    """
    import json
    import os
    from pathlib import Path

    from repro.parallel.perf import SEED_BASELINES, _micro_benches

    path = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    record = json.loads(path.read_text()) if path.exists() else {}
    record.setdefault("environment", {})["cpu_count"] = os.cpu_count()
    record["seed_baselines"] = SEED_BASELINES
    record["micro"] = _micro_benches()
    path.write_text(json.dumps(record, indent=2) + "\n")
    for key, speedup in record["micro"]["speedup_vs_seed"].items():
        assert speedup > 0, key
