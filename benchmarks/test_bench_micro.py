"""Micro-benchmarks of the library's hot primitives.

These are real pytest-benchmark measurements (many rounds), unlike the
table/figure regenerations which run once. They track the simulator's
throughput: address decode, timing-channel batch classification, GF(2)
algebra, and the partition inner loop.
"""

import numpy as np
import pytest

from repro.analysis import gf2
from repro.analysis.bits import parity_array
from repro.core.partition import partition_pool
from repro.core.probe import LatencyProbe, ProbeConfig
from repro.core.selection import select_addresses
from repro.dram.presets import preset
from repro.machine.machine import SimulatedMachine
from repro.memctrl.timing import NoiseParams


@pytest.fixture(scope="module")
def no1_machine():
    return SimulatedMachine.from_preset(
        preset("No.1"), seed=0, noise=NoiseParams.noiseless()
    )


@pytest.fixture(scope="module")
def address_pool():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2**33, 16384, dtype=np.uint64)


def test_bench_bank_decode_batch(benchmark, no1_machine, address_pool):
    mapping = no1_machine.ground_truth
    result = benchmark(mapping.bank_of_array, address_pool)
    assert result.max() < 16


def test_bench_row_decode_batch(benchmark, no1_machine, address_pool):
    mapping = no1_machine.ground_truth
    result = benchmark(mapping.row_of_array, address_pool)
    assert result.max() < 2**16


def test_bench_parity_array(benchmark, address_pool):
    mask = (1 << 14) | (1 << 17)
    result = benchmark(parity_array, address_pool, mask)
    assert result.shape == address_pool.shape


def test_bench_latency_batch(benchmark, no1_machine, address_pool):
    base = int(address_pool[0])
    latencies = benchmark(
        no1_machine.measure_latency_batch, base, address_pool[:8192]
    )
    assert latencies.shape == (8192,)


def test_bench_gf2_nullspace(benchmark):
    rng = np.random.default_rng(1)
    rows = [int(value) for value in rng.integers(1, 2**14, 200, dtype=np.uint64)]

    def solve():
        return gf2.nullspace_basis(gf2.row_echelon(rows), 14)

    basis = benchmark(solve)
    assert len(basis) == 14 - gf2.rank(rows)


def test_bench_gf2_span_equal(benchmark):
    functions = preset("No.6").mapping.bank_functions

    def check():
        return gf2.span_equal(functions, functions)

    assert benchmark(check)


def test_bench_partition_no8(benchmark):
    """The paper's dominant cost: Algorithm 2 on a 256-address pool."""

    def run():
        machine = SimulatedMachine.from_preset(
            preset("No.8"), seed=0, noise=NoiseParams.noiseless()
        )
        pages = machine.allocate(int(machine.total_bytes * 0.85), "contiguous")
        probe = LatencyProbe(machine, ProbeConfig(rounds=100, calibration_pairs=768))
        probe.calibrate(pages, np.random.default_rng(0))
        selection = select_addresses(
            pages, (6, 13, 14, 15, 16, 17, 18, 19)
        )
        return partition_pool(probe, selection.pool, 16, np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.pile_count >= 13
