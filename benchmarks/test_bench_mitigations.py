"""Extension bench: rowhammer mitigations (TRR, ECC, TRRespass bypass).

Beyond the paper: the defender-side sweep. With the mapping DRAMDig
recovers, measure observable flips on machine No.2 under every mitigation
combination, plus the many-sided decoy sweep that trades activation budget
against TRR tracker dilution.

Run with ``pytest benchmarks/test_bench_mitigations.py --benchmark-only -s``.
"""

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.mitigations import MitigationStack, TrrModel

CONFIG = HammerConfig(duration_seconds=60.0, test_variability=0.0)


def _attack():
    machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
    return DoubleSidedAttack(
        machine, config=CONFIG, vulnerability=preset("No.2").hammer_vulnerability
    )


def test_bench_mitigation_matrix(benchmark):
    belief = BeliefMapping.from_mapping(preset("No.2").mapping)

    def run():
        attack = _attack()
        rows = []
        for label, stack in [
            ("none", None),
            ("ECC", MitigationStack(ecc=True)),
            ("TRR", MitigationStack(trr=TrrModel())),
            ("TRR + ECC", MitigationStack(trr=TrrModel(), ecc=True)),
        ]:
            report = attack.run(belief, seed=3, mitigations=stack)
            rows.append(
                (
                    label,
                    report.raw_flips,
                    report.flips,
                    report.stopped_by_trr,
                    report.ecc_corrected,
                    report.ecc_detected,
                    report.ecc_silent,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Mitigation matrix (No.2, 1-minute tests, correct mapping) ===")
    print(
        render_table(
            ["mitigations", "raw", "observable", "TRR-stopped", "corrected",
             "detected", "silent"],
            rows,
        )
    )
    observable = {label: flips for label, _, flips, *_ in rows}
    assert observable["none"] > 0
    assert observable["TRR"] < observable["none"] * 0.2
    assert observable["ECC"] < observable["none"] * 0.2
    assert observable["TRR + ECC"] <= observable["TRR"]


def test_bench_trrespass_decoy_sweep(benchmark):
    belief = BeliefMapping.from_mapping(preset("No.2").mapping)
    stack = MitigationStack(trr=TrrModel(tracker_entries=4))

    def run():
        attack = _attack()
        rows = []
        for decoys in (0, 4, 8, 14, 30, 60):
            report = attack.run(belief, seed=3, mitigations=stack, decoy_rows=decoys)
            rows.append((decoys, report.raw_flips, report.flips))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== TRRespass decoy sweep (No.2, TRR with 4 tracker entries) ===")
    print(render_table(["decoy rows", "raw flips", "observable flips"], rows))
    observable = {decoys: flips for decoys, _, flips in rows}
    best = max(observable, key=observable.get)
    # The sweet spot is in the middle: enough decoys to flood the tracker,
    # not so many the activation budget starves.
    assert 4 <= best <= 30
    assert observable[best] > observable[0]
    assert observable[60] < observable[best]
