"""Extension bench: in-DRAM row remapping vs the double-sided attacker.

Run with ``pytest benchmarks/test_bench_remapping.py --benchmark-only -s``.
For each remap scheme: the naive attacker's targeted-adjacency agreement
(how often its sandwich encloses the intended victim) and its raw flip
count, against a remap-aware upper bound of 100 % agreement.
"""

from repro.dram.belief import BeliefMapping
from repro.dram.presets import preset
from repro.evalsuite.reporting import render_table
from repro.machine.machine import SimulatedMachine
from repro.rowhammer.hammer import DoubleSidedAttack, HammerConfig
from repro.rowhammer.remapping import ROW_REMAPS, adjacency_agreement

CONFIG = HammerConfig(duration_seconds=60.0, test_variability=0.0)


def test_bench_remapping(benchmark):
    machine = SimulatedMachine.from_preset(preset("No.2"), seed=1)
    belief = BeliefMapping.from_mapping(preset("No.2").mapping)

    def run():
        rows = []
        for scheme in sorted(ROW_REMAPS):
            agreement = adjacency_agreement(scheme)
            flips = sum(
                DoubleSidedAttack(
                    machine, config=CONFIG, vulnerability=1.0, row_remap=scheme
                )
                .run(belief, seed=seed)
                .flips
                for seed in range(3)
            )
            rows.append((scheme, f"{agreement:.0%}", flips))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Row-remapping study (No.2, naive double-sided attacker) ===")
    print(
        render_table(
            ["remap scheme", "targeted-adjacency agreement", "raw flips (3 tests)"],
            rows,
        )
    )
    by_scheme = {scheme: (agreement, flips) for scheme, agreement, flips in rows}
    assert by_scheme["none"][0] == "100%"
    assert by_scheme["pair_swap"][0] == "0%"
    # pair_swap displaces flips but keeps the count's order of magnitude.
    assert by_scheme["pair_swap"][1] > by_scheme["none"][1] * 0.4
    # bit3_flip loses the boundary sandwiches: measurably fewer raw flips.
    assert by_scheme["bit3_flip"][1] < by_scheme["none"][1]
