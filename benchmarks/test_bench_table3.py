"""Benchmark: regenerate paper Table III (rowhammer flips, DRAMDig vs DRAMA).

Run with ``pytest benchmarks/test_bench_table3.py --benchmark-only -s``.
Asserts the table's shape: DRAMDig induces significantly more flips than
DRAMA on every machine; DRAMA has zero-flip tests (its nondeterministic
mappings); No.2 is the most flip-prone machine and No.5 barely flips.
"""

from repro.evalsuite.table3 import render_table3, run_table3


def test_bench_table3(benchmark):
    rows = benchmark.pedantic(
        run_table3, kwargs={"seed": 1, "tests": 5}, rounds=1, iterations=1
    )
    print("\n=== Table III (reproduced) ===")
    print(render_table3(rows))

    by_machine = {row.machine: row for row in rows}
    # DRAMDig beats DRAMA on every machine.
    for row in rows:
        assert row.dramdig_total > row.drama_total, row.machine
    # DRAMDig never produces a zero test; DRAMA does somewhere.
    assert all(flip > 0 for row in rows for flip in row.dramdig_flips)
    assert any(flip == 0 for row in rows for flip in row.drama_flips)
    # Machine ordering: No.2 most vulnerable, No.5 barely (paper: 4863 vs 57).
    assert by_machine["No.2"].dramdig_total > by_machine["No.1"].dramdig_total
    assert by_machine["No.5"].dramdig_total < by_machine["No.1"].dramdig_total / 10
    # Rough magnitude: paper totals 2051 / 4863 / 57.
    assert 800 < by_machine["No.1"].dramdig_total < 5000
    assert 2000 < by_machine["No.2"].dramdig_total < 10000
    assert 10 < by_machine["No.5"].dramdig_total < 200
