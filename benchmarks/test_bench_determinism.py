"""Bench: the determinism study behind Table I's third column.

Run with ``pytest benchmarks/test_bench_determinism.py --benchmark-only -s``.
Eight repeated runs per tool on machine No.1: DRAMDig must produce one
output for all runs (across varying machine noise); DRAMA must not
(its single-shot row scan and random pools disagree with themselves,
"most of the time" per the paper).
"""

from repro.evalsuite.determinism import render_determinism, run_determinism


def test_bench_determinism(benchmark):
    rows = benchmark.pedantic(
        run_determinism,
        kwargs={"machine_name": "No.1", "runs": 8, "seed": 1},
        rounds=1,
        iterations=1,
    )
    print("\n=== Determinism study (No.1, 8 runs per tool) ===")
    print(render_determinism(rows))

    by_tool = {row.tool: row for row in rows}
    dramdig = by_tool["DRAMDig"]
    assert dramdig.completed == 8
    assert dramdig.distinct_outputs == 1
    assert dramdig.correct_fraction == 1.0

    drama = by_tool["DRAMA"]
    assert drama.distinct_outputs > 1
    assert drama.correct_fraction < 1.0
