"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``. This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``pip install -e .`` on modern toolchains via pyproject.toml) work.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
