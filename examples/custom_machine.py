#!/usr/bin/env python
"""Define a machine the paper never measured and reverse-engineer it.

DRAMDig's claim is that it is *generic*: it needs no per-machine
templates, only the system's own dmidecode output and the DDR spec. This
example builds a hypothetical dual-channel 32 GiB DDR4 workstation with a
plausible Intel-style hash (wider than anything in Table II), hides it
behind a simulated machine, and lets DRAMDig find it.

Run:  python examples/custom_machine.py
"""

from repro import AddressMapping, DramDig, DramGeometry, SimulatedMachine
from repro.analysis.bits import mask_of_bits
from repro.dram.spec import DdrGeneration


def build_custom_mapping() -> AddressMapping:
    """A 32 GiB dual-channel, 2-rank DDR4 machine (64 banks, 35-bit
    addresses): Skylake-style hash extended by one row bit."""
    geometry = DramGeometry(
        generation=DdrGeneration.DDR4,
        total_bytes=32 * 2**30,
        channels=2,
        dimms_per_channel=1,
        ranks_per_dimm=2,
        banks_per_rank=16,
    )
    return AddressMapping(
        geometry=geometry,
        bank_functions=(
            mask_of_bits([7, 14]),
            mask_of_bits([15, 19]),
            mask_of_bits([16, 20]),
            mask_of_bits([17, 21]),
            mask_of_bits([18, 22]),
            mask_of_bits([8, 9, 12, 13, 18, 19]),
        ),
        row_bits=tuple(range(19, 34)) + (34,),
        column_bits=tuple(range(0, 8)) + tuple(range(9, 14)),
    )


def main() -> None:
    truth = build_custom_mapping()
    print("Hypothetical machine:", truth.geometry.describe())
    print("Hidden ground truth:")
    print(truth.describe())
    print()

    machine = SimulatedMachine(mapping=truth, seed=3)
    print("Running DRAMDig (no templates, no machine-specific code) ...")
    result = DramDig().run(machine)
    print()
    print("Recovered:")
    print(result.mapping.describe())
    print()
    equivalent = result.mapping.equivalent_to(truth)
    print(f"equivalent to ground truth: {equivalent}")
    assert equivalent


if __name__ == "__main__":
    main()
