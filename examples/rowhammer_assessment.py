#!/usr/bin/env python
"""Rowhammer vulnerability assessment — the paper's end-to-end use case.

"DRAMDig enables users to test how vulnerable their computers are to the
rowhammer problem." This example runs the full workflow on two machines
from the paper's Table III: the badly vulnerable No.2 and the nearly
immune No.5.

1. Reverse-engineer the DRAM address mapping with DRAMDig.
2. Run five 1-minute double-sided rowhammer tests aimed with it.
3. Print the assessment report.

Run:  python examples/rowhammer_assessment.py
"""

from repro import BeliefMapping, DramDig, HammerConfig, SimulatedMachine, preset
from repro.rowhammer import assess_vulnerability


def assess(machine_name: str) -> None:
    machine_preset = preset(machine_name)
    machine = SimulatedMachine.from_preset(machine_preset, seed=7)
    print(f"--- {machine_name}: {machine_preset.microarchitecture} "
          f"{machine_preset.cpu}, {machine_preset.geometry.describe()} ---")

    result = DramDig().run(machine)
    print(f"mapping recovered in {result.total_seconds:.0f} simulated seconds")

    report = assess_vulnerability(
        machine,
        BeliefMapping.from_mapping(result.mapping),
        vulnerability=machine_preset.hammer_vulnerability,
        tests=5,
        config=HammerConfig(duration_seconds=60.0),
        seed=100,
    )
    print(report.summary())
    print()


def main() -> None:
    for name in ("No.2", "No.5"):
        assess(name)


if __name__ == "__main__":
    main()
