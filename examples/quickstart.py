#!/usr/bin/env python
"""Quickstart: reverse-engineer one machine's DRAM address mapping.

Builds the simulated version of the paper's machine No.1 (Sandy Bridge
i5-2400, dual-channel DDR3 8 GiB), runs DRAMDig against it, and checks
the recovered mapping against the hidden ground truth.

Run:  python examples/quickstart.py
"""

from repro import DramDig, SimulatedMachine, preset


def main() -> None:
    machine_preset = preset("No.1")
    print(f"Machine: {machine_preset.microarchitecture} {machine_preset.cpu}")
    print(f"DRAM:    {machine_preset.geometry.describe()}")
    print()

    # The tool only sees the machine's public surface: allocation, the
    # timing primitive, and dmidecode output.
    machine = SimulatedMachine.from_preset(machine_preset, seed=42)

    print("Running DRAMDig ...")
    result = DramDig().run(machine)
    print()
    print(result.summary())
    print()

    # The evaluation is allowed to peek at ground truth.
    if result.mapping.equivalent_to(machine_preset.mapping):
        print("Recovered mapping is equivalent to the ground truth. \\o/")
    else:
        print("MISMATCH against ground truth:")
        print(machine_preset.mapping.describe())


if __name__ == "__main__":
    main()
