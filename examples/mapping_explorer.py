#!/usr/bin/env python
"""Explore a DRAM address mapping: decode addresses, draw the bit layout.

Shows the substrate API directly — no reverse engineering involved.
For every machine in the paper's Table II this prints the bit-layout
diagram (which physical address bit feeds rows, columns, and each bank
hash) and decodes a few example addresses.

Run:  python examples/mapping_explorer.py [machine]
"""

import sys

from repro import preset, preset_names
from repro.analysis.bits import format_mask
from repro.dram.explain import explain_mapping


def main() -> None:
    names = sys.argv[1:] if len(sys.argv) > 1 else ["No.2"]
    for name in names:
        if name not in preset_names():
            raise SystemExit(f"unknown machine {name!r}; options: {preset_names()}")
        machine_preset = preset(name)
        mapping = machine_preset.mapping
        print(f"=== {name}: {machine_preset.microarchitecture} "
              f"{machine_preset.cpu} ===")
        print(explain_mapping(mapping))
        print()
        print("Example decodes:")
        for address in (0x0, 0x12345678, mapping.geometry.total_bytes - 64):
            dram = mapping.dram_address(address)
            print(f"  {address:#011x} -> bank {dram.bank:>2}, "
                  f"row {dram.row:>6}, column {dram.column:>5}")
        print()
        print("Bank functions in paper notation:",
              ", ".join(format_mask(m) for m in mapping.bank_functions))
        print()


if __name__ == "__main__":
    main()
