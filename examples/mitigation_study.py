#!/usr/bin/env python
"""Defender-side study: what TRR and ECC buy against a perfect attacker.

Gives the attacker the *correct* mapping (DRAMDig's output) on the
flip-happy machine No.2, then measures observable corruption under each
mitigation, including the TRRespass many-sided bypass sweep.

Run:  python examples/mitigation_study.py
"""

from repro import BeliefMapping, HammerConfig, SimulatedMachine, preset
from repro.rowhammer import DoubleSidedAttack, MitigationStack, TrrModel

CONFIG = HammerConfig(duration_seconds=60.0, test_variability=0.0)


def main() -> None:
    machine_preset = preset("No.2")
    machine = SimulatedMachine.from_preset(machine_preset, seed=9)
    attack = DoubleSidedAttack(
        machine, config=CONFIG, vulnerability=machine_preset.hammer_vulnerability
    )
    belief = BeliefMapping.from_mapping(machine_preset.mapping)

    print(f"Machine No.2 ({machine_preset.geometry.describe()}), "
          "1-minute double-sided tests, correct mapping\n")

    print(f"{'mitigations':<12} {'raw':>5} {'observable':>11} "
          f"{'TRR-stopped':>12} {'ECC-corrected':>14}")
    for label, stack in [
        ("none", None),
        ("ECC", MitigationStack(ecc=True)),
        ("TRR", MitigationStack(trr=TrrModel())),
        ("TRR+ECC", MitigationStack(trr=TrrModel(), ecc=True)),
    ]:
        report = attack.run(belief, seed=1, mitigations=stack)
        print(f"{label:<12} {report.raw_flips:>5} {report.flips:>11} "
              f"{report.stopped_by_trr:>12} {report.ecc_corrected:>14}")

    print("\nTRRespass decoy sweep against TRR (4 tracker entries):")
    stack = MitigationStack(trr=TrrModel(tracker_entries=4))
    print(f"{'decoy rows':<12} {'observable flips':>17}")
    for decoys in (0, 4, 8, 14, 30, 60):
        report = attack.run(belief, seed=1, mitigations=stack, decoy_rows=decoys)
        print(f"{decoys:<12} {report.flips:>17}")
    print("\nThe sweet spot sits in the middle: enough decoys to flood the")
    print("tracker, not so many that the activation budget starves.")


if __name__ == "__main__":
    main()
