#!/usr/bin/env python
"""Visualise the timing channel every tool in the paper stands on.

Measures a few thousand random address pairs on a simulated machine and
renders the latency histogram: the fast hump (same row / different banks)
and the slow hump (same-bank-different-row, the row-buffer conflict),
plus the calibrated cutoff a tool would use. Also shows what the noisy
No.3 laptop looks like — the machine DRAMA never finished on.

Run:  python examples/timing_channel_demo.py
"""

import numpy as np

from repro import SimulatedMachine, preset
from repro.analysis.histogram import build_histogram, render_histogram
from repro.core.probe import LatencyProbe, ProbeConfig


def show_channel(name: str, repeats: int) -> None:
    machine_preset = preset(name)
    machine = SimulatedMachine.from_preset(machine_preset, seed=0)
    pages = machine.allocate(int(machine.total_bytes * 0.8), "contiguous")
    rng = np.random.default_rng(0)

    probe = LatencyProbe(
        machine, ProbeConfig(rounds=1000, repeats=repeats, calibration_pairs=768)
    )
    threshold = probe.calibrate(pages, rng)

    bases = pages.sample_addresses(3000, rng)
    partners = pages.sample_addresses(3000, rng)
    latencies = np.array(
        [
            min(
                machine.measure_latency(int(a), int(b), rounds=1000)
                for _ in range(repeats)
            )
            for a, b in zip(bases, partners)
        ]
    )

    print(f"--- {name} ({machine_preset.microarchitecture}), "
          f"min-of-{repeats} measurements ---")
    print(f"calibrated: fast {threshold.fast_mode:.1f} ns, "
          f"slow {threshold.slow_mode:.1f} ns, cutoff {threshold.cutoff:.1f} ns")
    histogram = build_histogram(latencies, bins=30)
    print(render_histogram(histogram, cutoff=threshold.cutoff))
    slow_fraction = (latencies > threshold.cutoff).mean()
    banks = machine_preset.geometry.total_banks
    print(f"slow fraction {slow_fraction:.3f} (expected ~1/{banks} = "
          f"{1 / banks:.3f} for random pairs)")
    print()


def main() -> None:
    show_channel("No.1", repeats=2)   # quiet desktop
    show_channel("No.3", repeats=1)   # noisy laptop, single-shot (DRAMA's view)
    show_channel("No.3", repeats=3)   # same laptop, DRAMDig's robust view


if __name__ == "__main__":
    main()
