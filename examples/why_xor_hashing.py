#!/usr/bin/env python
"""Why do Intel controllers XOR-hash bank bits at all?

The paper reverse-engineers the hash; this example shows its purpose.
Replay three workloads through the memory-controller simulator under two
mappings of the same machine:

* the real (hashed) Sandy Bridge mapping of machine No.1,
* a naive strawman whose bank bits are plain address bits.

A column-major matrix walk whose row stride matches the naive bank
period lands every access in one bank (no bank-level parallelism, a
row conflict per access); the XOR hash spreads the same walk across all
16 banks.

Run:  python examples/why_xor_hashing.py
"""

import numpy as np

from repro import preset
from repro.dram.random_mapping import naive_mapping
from repro.memctrl.trace import (
    matrix_column_trace,
    random_trace,
    run_trace,
    sequential_trace,
)


def report(label, mapping, trace) -> None:
    stats = run_trace(mapping, trace)
    print(f"  {label:<8} hits {stats.hit_rate:5.1%}  conflicts "
          f"{stats.conflict_rate:5.1%}  banks {stats.banks_used:>2}  "
          f"busiest-bank share {stats.bank_imbalance:5.1%}  "
          f"banking speedup {stats.speedup_from_banking:4.1f}x")


def main() -> None:
    machine_preset = preset("No.1")
    hashed = machine_preset.mapping
    naive = naive_mapping(machine_preset.geometry)
    rng = np.random.default_rng(0)

    print("Machine No.1 geometry, hashed (real) vs naive (strawman) mapping\n")

    print("Streaming read (512 consecutive cache lines):")
    trace = sequential_trace(0x4000000, 512)
    report("hashed", hashed, trace)
    report("naive", naive, trace)

    print("\nColumn-major matrix walk (stride = 128 KiB, the naive bank period):")
    trace = matrix_column_trace(0x4000000, rows=256, row_stride_bytes=8192 * 16, columns=8)
    report("hashed", hashed, trace)
    report("naive", naive, trace)

    print("\nRandom access (4000 lines):")
    trace = random_trace(machine_preset.geometry.total_bytes, 4000, rng)
    report("hashed", hashed, trace)
    report("naive", naive, trace)

    print("\nThe hash costs nothing on friendly workloads and rescues the")
    print("pathological stride — which is why every Intel controller ships")
    print("one, and why attackers must reverse-engineer it.")


if __name__ == "__main__":
    main()
