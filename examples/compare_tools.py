#!/usr/bin/env python
"""Head-to-head tool comparison on one machine (Table I in miniature).

Runs DRAMDig, DRAMA (three times — watch it disagree with itself) and
Xiao et al. on the paper's machine No.6, the DDR4 Skylake that breaks
Xiao's tool.

Run:  python examples/compare_tools.py
"""

from repro import DramaTool, DramDig, SimulatedMachine, XiaoTool, preset
from repro.analysis.bits import format_mask
from repro.dram.errors import ReproError


def main() -> None:
    machine_preset = preset("No.6")
    truth = machine_preset.mapping
    print(f"Machine No.6: {machine_preset.microarchitecture} "
          f"{machine_preset.cpu}, {machine_preset.geometry.describe()}")
    print()

    print("== DRAMDig ==")
    machine = SimulatedMachine.from_preset(machine_preset, seed=11)
    result = DramDig().run(machine)
    print(f"  {result.total_seconds:.0f} s simulated, "
          f"equivalent to truth: {result.mapping.equivalent_to(truth)}")

    print("== DRAMA (three independent runs) ==")
    for run_index in range(3):
        machine = SimulatedMachine.from_preset(machine_preset, seed=11)
        drama = DramaTool(seed=run_index).run(machine)
        if drama.belief is None:
            print(f"  run {run_index}: timed out after {drama.seconds:.0f} s")
            continue
        functions = ", ".join(format_mask(f) for f in drama.belief.bank_functions)
        print(f"  run {run_index}: {drama.seconds:.0f} s, "
              f"rows {drama.belief.row_bits[0]}..{drama.belief.row_bits[-1]}, "
              f"functions [{functions}], "
              f"hammer-equivalent: {drama.belief.hammer_equivalent(truth)}")

    print("== Xiao et al. ==")
    machine = SimulatedMachine.from_preset(machine_preset, seed=11)
    try:
        xiao = XiaoTool().run(machine)
        print(f"  finished in {xiao.seconds:.0f} s")
    except ReproError as error:
        print(f"  failed: {error}")


if __name__ == "__main__":
    main()
